package transport

import (
	"context"
	"fmt"
	"sync"
	"time"

	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/memcproto"
)

// NetRouter implements core.Router over the wire: it caches the last
// cluster map it saw, hands out netConns from a shared pool, and
// refreshes the map when the wire tells it to — a fat not-my-vbucket
// reply installs the shipped map directly, and a response stamped
// with a newer epoch marks the cache stale so the next BucketMap
// refetches. This is the paper's smart client: topology intelligence
// rides the data path, not a separate control channel.
type NetRouter struct {
	bucket string
	pool   *Pool
	seeds  []string

	mu    sync.Mutex
	m     *cmap.Map
	stale bool

	localID   cmap.NodeID
	localConn core.NodeConn
}

var _ core.Router = (*NetRouter)(nil)

// NewRouter builds a router that bootstraps its map from the seed
// addresses.
func NewRouter(bucket string, seeds []string, pool *Pool) *NetRouter {
	if pool == nil {
		pool = NewPool()
	}
	return &NetRouter{bucket: bucket, pool: pool, seeds: seeds}
}

// SetLocal short-circuits one node to an in-process conn — a cbserver
// process routes to itself by function call and to peers by socket.
func (r *NetRouter) SetLocal(id cmap.NodeID, conn core.NodeConn) {
	r.mu.Lock()
	r.localID, r.localConn = id, conn
	r.mu.Unlock()
}

// Pool exposes the router's connection pool (the member layer shares
// it for admin traffic).
func (r *NetRouter) Pool() *Pool { return r.pool }

// BucketMap returns the cached map, refetching when empty or stale.
func (r *NetRouter) BucketMap() (*cmap.Map, error) {
	r.mu.Lock()
	m, stale := r.m, r.stale
	r.mu.Unlock()
	if m != nil && !stale {
		return m, nil
	}
	if err := r.refreshMap(); err != nil {
		if m != nil {
			return m, nil // stale beats nothing; NMVB will correct us
		}
		return nil, err
	}
	r.mu.Lock()
	m = r.m
	r.mu.Unlock()
	return m, nil
}

// Conn returns the conn for a node — in-process for the local node,
// pooled TCP otherwise. Node IDs are KV addresses by convention.
func (r *NetRouter) Conn(node cmap.NodeID) (core.NodeConn, error) {
	r.mu.Lock()
	localID, localConn := r.localID, r.localConn
	r.mu.Unlock()
	if localConn != nil && node == localID {
		return localConn, nil
	}
	return netConn{addr: string(node), pool: r.pool, sink: r}, nil
}

// observeEpoch marks the cached map stale when the wire advertises a
// newer revision.
func (r *NetRouter) observeEpoch(epoch int64) {
	r.mu.Lock()
	if r.m != nil && epoch > r.m.Rev {
		r.stale = true
	}
	r.mu.Unlock()
}

// installMap adopts a map if it is newer than the cache (fat NMVB
// replies and coordinator pushes land here).
func (r *NetRouter) installMap(m *cmap.Map) {
	r.mu.Lock()
	if r.m == nil || m.Rev >= r.m.Rev {
		r.m = m
		r.stale = false
	}
	r.mu.Unlock()
}

// InstallMap is installMap for external callers (the member installs
// coordinator-pushed maps into its serving router).
func (r *NetRouter) InstallMap(m *cmap.Map) { r.installMap(m) }

// Invalidate forces the next BucketMap to refetch.
func (r *NetRouter) Invalidate() {
	r.mu.Lock()
	r.stale = true
	r.mu.Unlock()
}

// refreshMap asks the seeds and every node of the last-known map for
// the current cluster map, adopting the first success.
func (r *NetRouter) refreshMap() error {
	r.mu.Lock()
	candidates := append([]string(nil), r.seeds...)
	if r.m != nil {
		for _, n := range r.m.Nodes {
			candidates = append(candidates, string(n))
		}
	}
	r.mu.Unlock()

	var lastErr error = fmt.Errorf("transport: no map source configured: %w", core.ErrNodeUnreachable)
	seen := map[string]bool{}
	for _, addr := range candidates {
		if seen[addr] {
			continue
		}
		seen[addr] = true
		m, err := fetchMap(r.pool, addr, r.bucket)
		if err != nil {
			lastErr = err
			continue
		}
		r.installMap(m)
		return nil
	}
	return lastErr
}

// fetchMap pulls the cluster map from one node.
func fetchMap(pool *Pool, addr, bucket string) (*cmap.Map, error) {
	conn, err := pool.Get(addr)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := conn.Roundtrip(ctx, &memcproto.Frame{
		Magic:  memcproto.MagicReq,
		Opcode: memcproto.OpGetClusterMap,
		Key:    []byte(bucket),
	})
	if err != nil {
		return nil, err
	}
	if resp.Status != memcproto.StatusOK {
		return nil, errOf(resp.Status, resp.Value)
	}
	return decodeMap(resp.Value)
}
