package transport

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"couchgo/internal/cache"
	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/dcp"
	"couchgo/internal/events"
	"couchgo/internal/memcproto"
	"couchgo/internal/trace"
	"couchgo/internal/vbucket"
)

// ServerConfig wires a Server to the process-local cluster and the
// process-level topology callbacks the coordinator/member layer
// provides.
type ServerConfig struct {
	Cluster *core.Cluster
	// Node is the local node's ID in the process-level map — by
	// convention its advertised KV address.
	Node cmap.NodeID
	// Bucket is the bucket this listener serves (one bucket per KV
	// port, like the seed's single-bucket cbserver).
	Bucket string
	// Map returns the process-level cluster map for epoch stamping and
	// fat not-my-vbucket replies. Nil (or a nil return) falls back to
	// the local cluster's bucket map.
	Map func() *cmap.Map
	// OnJoin admits a member (key = its advertised KV address) and
	// returns the current process map, nil if not yet minted.
	OnJoin func(addr string) (*cmap.Map, error)
	// OnSetMap installs a coordinator-pushed process map.
	OnSetMap func(m *cmap.Map) error
	// OnHeartbeat records a member heartbeat.
	OnHeartbeat func(addr string)
	// Stats contributes extra fields to OpStats replies.
	Stats func() map[string]any
	// Observe serves OpFederate observability queries: domain names
	// what is asked ("metrics", "health", "events", "trace",
	// "trace-config"), payload and the returned bytes are JSON. Nil
	// answers StatusNotSupported.
	Observe func(domain string, payload []byte) ([]byte, error)
}

// Server accepts wire-protocol connections and dispatches decoded
// frames through the same core.NodeConn surface the in-process
// loopback uses — both transports execute the identical op path.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu       sync.Mutex
	sessions map[*session]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// Listen starts a server on addr ("host:port", port 0 for ephemeral).
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, cfg), nil
}

// Serve starts a server on an already-bound listener (the node layer
// binds first so it can advertise the real port before serving).
func Serve(ln net.Listener, cfg ServerConfig) *Server {
	s := &Server{cfg: cfg, ln: ln, sessions: map[*session]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr is the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and tears down every session.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()

	s.ln.Close()
	for _, sess := range sessions {
		sess.close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		raw, err := s.ln.Accept()
		if err != nil {
			return
		}
		sess := &session{
			srv:     s,
			nc:      countingConn{raw},
			writeCh: make(chan *[]byte, 256),
			closed:  make(chan struct{}),
			streams: map[streamKey]*servedStream{},
			sem:     make(chan struct{}, 128),
		}
		sess.br = bufio.NewReaderSize(sess.nc, 32<<10)
		sess.ctx, sess.cancel = context.WithCancel(context.Background())
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			raw.Close()
			return
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		mConns.Add(1)
		s.wg.Add(2)
		go sess.writeLoop()
		go sess.readLoop()
	}
}

// currentMap is the map responses advertise: the process-level map if
// the topology layer provides one, else the local bucket map.
func (s *Server) currentMap() *cmap.Map {
	if s.cfg.Map != nil {
		if m := s.cfg.Map(); m != nil {
			return m
		}
	}
	m, err := s.cfg.Cluster.BucketMap(s.cfg.Bucket)
	if err != nil {
		return nil
	}
	return m
}

func (s *Server) epoch() int64 {
	if m := s.currentMap(); m != nil {
		return m.Rev
	}
	return 0
}

type streamKey struct {
	vb   int
	name string
}

type servedStream struct {
	stream dcp.MutationStream
	srcVB  *vbucket.VBucket
}

// session is one accepted connection: a reader goroutine decoding
// frames, a writer goroutine that is the only code touching the
// socket's write side, and per-request handler goroutines in between
// (responses demux by opaque, so order does not matter).
type session struct {
	srv     *Server
	nc      net.Conn
	br      *bufio.Reader // readLoop-only; batches pipelined requests into one syscall
	writeCh chan *[]byte
	closed  chan struct{}
	once    sync.Once
	sem     chan struct{}
	// ctx is cancelled when the session closes, releasing in-flight
	// handler goroutines (durability waits, consistency waits) whose
	// client is gone.
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	streams map[streamKey]*servedStream
}

func (c *session) close() {
	c.once.Do(func() {
		close(c.closed)
		c.cancel()
		c.nc.Close()
		mConns.Add(-1)
		c.mu.Lock()
		streams := c.streams
		c.streams = map[streamKey]*servedStream{}
		c.mu.Unlock()
		for _, st := range streams {
			st.stream.Close()
		}
		c.srv.mu.Lock()
		delete(c.srv.sessions, c)
		c.srv.mu.Unlock()
	})
}

func (c *session) writeLoop() {
	defer c.srv.wg.Done()
	if err := writeCoalesced(c.nc, c.writeCh, c.closed); err != nil {
		c.close()
	}
}

// send encodes and enqueues one frame; drops it if the session died.
func (c *session) send(f *memcproto.Frame) {
	buf, err := encodeFrame(f)
	if err != nil {
		return
	}
	select {
	case c.writeCh <- buf:
	case <-c.closed:
		recycleBuf(buf)
	}
}

// respond builds the response frame for req: status, the epoch-prefixed
// extras, and either the payload or the error message.
func (c *session) respond(req *memcproto.Frame, status memcproto.Status, extras, value []byte, cas uint64) {
	c.send(&memcproto.Frame{
		Magic:  memcproto.MagicRes,
		Opcode: req.Opcode,
		Status: status,
		Opaque: req.Opaque,
		CAS:    cas,
		Extras: extras,
		Value:  value,
	})
}

// respondErr maps a handler error onto the wire, shipping the fat map
// on not-my-vbucket so the client refreshes in one round trip.
func (c *session) respondErr(req *memcproto.Frame, err error) {
	status := statusOf(err)
	extras := memcproto.AppendEpoch(nil, c.srv.epoch())
	var value []byte
	if status == memcproto.StatusNotMyVBucket {
		if m := c.srv.currentMap(); m != nil {
			value, _ = json.Marshal(m)
		}
	} else {
		value = []byte(err.Error())
	}
	c.respond(req, status, extras, value, 0)
}

func (c *session) readLoop() {
	defer c.srv.wg.Done()
	defer c.close()
	for {
		f, err := memcproto.Read(c.br)
		if err != nil {
			return
		}
		if f.Magic != memcproto.MagicReq {
			return // protocol violation; drop the conn
		}
		switch f.Opcode {
		case memcproto.OpDCPStreamReq, memcproto.OpDCPAck, memcproto.OpDCPFailoverLog:
			c.handleDCP(f)
		case memcproto.OpJoin, memcproto.OpGetClusterMap, memcproto.OpSetClusterMap,
			memcproto.OpHeartbeat, memcproto.OpStats, memcproto.OpNoop, memcproto.OpHello,
			memcproto.OpFederate:
			c.handleAdmin(f)
		default:
			// Ops that cannot block (no durability wait) run inline on
			// the read loop: no goroutine hand-off, and their responses
			// pile into writeCh while more pipelined requests are
			// already buffered — the writer coalesces them. Ops that
			// may wait get their own goroutine (bounded by sem) so one
			// durability wait does not stall the conn.
			if fastKV(f) {
				c.handleKV(f)
				continue
			}
			c.sem <- struct{}{}
			go func(f *memcproto.Frame) {
				defer func() { <-c.sem }()
				c.handleKV(f)
			}(f)
		}
	}
}

// fastKV reports whether f's op is guaranteed not to block on a
// durability or consistency wait, making it safe to handle inline on
// the session read loop. Mutations qualify only when their extras
// carry no durability requirement; a malformed frame is sent to the
// goroutine path, which produces the error response.
func fastKV(f *memcproto.Frame) bool {
	switch f.Opcode {
	case memcproto.OpGet, memcproto.OpGetMeta, memcproto.OpTouch,
		memcproto.OpGetAndLock, memcproto.OpUnlock, memcproto.OpSubdocGet:
		return true
	case memcproto.OpSet, memcproto.OpDelete:
		_, bare, err := memcproto.SplitTraceContext(f)
		if err != nil {
			return false
		}
		me, err := memcproto.DecodeMutateExtras(sliceFrom(bare, 8))
		if err != nil {
			return false
		}
		return me.ReplicateTo == 0 && !me.Persist
	}
	return false
}

func (c *session) handleAdmin(f *memcproto.Frame) {
	extras := memcproto.AppendEpoch(nil, c.srv.epoch())
	switch f.Opcode {
	case memcproto.OpNoop, memcproto.OpHello:
		c.respond(f, memcproto.StatusOK, extras, nil, 0)
	case memcproto.OpJoin:
		if c.srv.cfg.OnJoin == nil {
			c.respond(f, memcproto.StatusNotSupported, extras, []byte("not a coordinator"), 0)
			return
		}
		m, err := c.srv.cfg.OnJoin(string(f.Key))
		if err != nil {
			c.respondErr(f, err)
			return
		}
		var value []byte
		if m != nil {
			value, _ = json.Marshal(m)
		}
		c.respond(f, memcproto.StatusOK, memcproto.AppendEpoch(nil, c.srv.epoch()), value, 0)
	case memcproto.OpGetClusterMap:
		m := c.srv.currentMap()
		if m == nil {
			c.respond(f, memcproto.StatusKeyNotFound, extras, []byte("no cluster map yet"), 0)
			return
		}
		value, _ := json.Marshal(m)
		c.respond(f, memcproto.StatusOK, extras, value, 0)
	case memcproto.OpSetClusterMap:
		m, err := decodeMap(f.Value)
		if err == nil && c.srv.cfg.OnSetMap != nil {
			err = c.srv.cfg.OnSetMap(m)
		}
		if err != nil {
			c.respondErr(f, err)
			return
		}
		c.respond(f, memcproto.StatusOK, memcproto.AppendEpoch(nil, c.srv.epoch()), nil, 0)
	case memcproto.OpHeartbeat:
		if c.srv.cfg.OnHeartbeat != nil {
			c.srv.cfg.OnHeartbeat(string(f.Key))
		}
		c.respond(f, memcproto.StatusOK, extras, nil, 0)
	case memcproto.OpStats:
		stats := map[string]any{"transport": Stats()}
		if c.srv.cfg.Stats != nil {
			for k, v := range c.srv.cfg.Stats() {
				stats[k] = v
			}
		}
		value, _ := json.Marshal(stats)
		c.respond(f, memcproto.StatusOK, extras, value, 0)
	case memcproto.OpFederate:
		if c.srv.cfg.Observe == nil {
			c.respond(f, memcproto.StatusNotSupported, extras, []byte("no observability provider"), 0)
			return
		}
		value, err := c.srv.cfg.Observe(string(f.Key), f.Value)
		if err != nil {
			c.respondErr(f, err)
			return
		}
		c.respond(f, memcproto.StatusOK, extras, value, 0)
	}
}

// handleKV decodes one KV request and executes it through the local
// node's loopback conn — including the server-side durability wait
// for SET/DELETE, which runs before the response frame is encoded.
func (c *session) handleKV(f *memcproto.Frame) {
	t0 := time.Now()
	result := "ok"
	defer func() { opObserve(f.Opcode, result, t0) }()

	fail := func(err error) {
		result = kvResult(err)
		c.respondErr(f, err)
	}

	// A trace context may ride the extras tail (announced by the
	// datatype flag): strip and validate it before any extras field is
	// read, then continue the client's trace so the cache, storage,
	// and DCP spans this request causes land under the client's span
	// across the process boundary.
	tc, bare, err := memcproto.SplitTraceContext(f)
	if err != nil {
		fail(err)
		return
	}
	f.Extras = bare
	ctx, span := trace.Default.Join(c.ctx, "server:"+f.Opcode.String(), tc.TraceID, tc.SpanID, tc.Sampled)
	if span != nil {
		span.Annotate("node", string(c.srv.cfg.Node))
		defer func() {
			if result != "ok" {
				span.Annotate("result", result)
			}
			span.End()
		}()
	}

	conn, err := c.srv.cfg.Cluster.LoopbackConn(c.srv.cfg.Node, c.srv.cfg.Bucket)
	if err != nil {
		fail(err)
		return
	}
	// ctx descends from the session ctx, not Background: when the
	// client hangs up, its pending durability/consistency waits unwind
	// instead of holding vBucket waiters for a response no one will
	// read.
	vbID := int(f.VBucket)
	key := string(f.Key)
	nowU, _ := memcproto.Uint64At(f.Extras, 0)
	now := int64(nowU)

	okItem := func(it cache.Item, err error) {
		if err != nil {
			fail(err)
			return
		}
		extras := memcproto.AppendItemMeta(memcproto.AppendEpoch(nil, c.srv.epoch()), itemMetaOf(it))
		c.respond(f, memcproto.StatusOK, extras, it.Value, it.CAS)
	}
	okJSON := func(v any, err error) {
		if err != nil {
			fail(err)
			return
		}
		value, err := json.Marshal(v)
		if err != nil {
			fail(err)
			return
		}
		c.respond(f, memcproto.StatusOK, memcproto.AppendEpoch(nil, c.srv.epoch()), value, 0)
	}
	okEmpty := func(err error) {
		if err != nil {
			fail(err)
			return
		}
		c.respond(f, memcproto.StatusOK, memcproto.AppendEpoch(nil, c.srv.epoch()), nil, 0)
	}
	mutate := func() (memcproto.MutateExtras, error) {
		return memcproto.DecodeMutateExtras(sliceFrom(f.Extras, 8))
	}

	switch f.Opcode {
	case memcproto.OpGet:
		okItem(conn.Get(ctx, vbID, key, now))
	case memcproto.OpSet:
		me, err := mutate()
		if err != nil {
			fail(err)
			return
		}
		okItem(conn.Set(ctx, vbID, key, copyBytes(f.Value), me.Flags, me.Expiry, f.CAS, now, durOf(me)))
	case memcproto.OpAdd:
		okItem(conn.Add(ctx, vbID, key, copyBytes(f.Value), now))
	case memcproto.OpReplace:
		okItem(conn.Replace(ctx, vbID, key, copyBytes(f.Value), f.CAS, now))
	case memcproto.OpDelete:
		me, err := mutate()
		if err != nil {
			fail(err)
			return
		}
		okItem(conn.Delete(ctx, vbID, key, f.CAS, now, durOf(me)))
	case memcproto.OpTouch:
		expiry, _ := memcproto.Uint64At(f.Extras, 8)
		okEmpty(conn.Touch(ctx, vbID, key, int64(expiry), now))
	case memcproto.OpGetAndLock:
		lockSecs, _ := memcproto.Uint64At(f.Extras, 8)
		okItem(conn.GetAndLock(ctx, vbID, key, int64(lockSecs), now))
	case memcproto.OpUnlock:
		okEmpty(conn.Unlock(ctx, vbID, key, f.CAS, now))
	case memcproto.OpAppendVal:
		okItem(conn.Append(ctx, vbID, key, copyBytes(f.Value), f.CAS, now))
	case memcproto.OpPrependVal:
		okItem(conn.Prepend(ctx, vbID, key, copyBytes(f.Value), f.CAS, now))
	case memcproto.OpGetMeta:
		okItem(conn.GetMeta(ctx, vbID, key))
	case memcproto.OpSubdocGet:
		path, _, err := memcproto.SplitSubdocBody(sliceFrom(f.Extras, 8), f.Value)
		if err != nil {
			fail(err)
			return
		}
		okJSON(conn.SubdocGet(ctx, vbID, key, path, now))
	case memcproto.OpSubdocSet, memcproto.OpSubdocArrAdd:
		path, payload, err := memcproto.SplitSubdocBody(sliceFrom(f.Extras, 8), f.Value)
		if err != nil {
			fail(err)
			return
		}
		var v any
		if err := json.Unmarshal(payload, &v); err != nil {
			fail(err)
			return
		}
		if f.Opcode == memcproto.OpSubdocSet {
			okItem(conn.SubdocSet(ctx, vbID, key, path, v, f.CAS, now))
		} else {
			okItem(conn.SubdocArrayAppend(ctx, vbID, key, path, v, f.CAS, now))
		}
	case memcproto.OpSubdocRemove:
		path, _, err := memcproto.SplitSubdocBody(sliceFrom(f.Extras, 8), f.Value)
		if err != nil {
			fail(err)
			return
		}
		okItem(conn.SubdocRemove(ctx, vbID, key, path, f.CAS, now))
	case memcproto.OpSubdocCounter:
		path, _, err := memcproto.SplitSubdocBody(sliceFrom(f.Extras, 8), f.Value)
		if err != nil {
			fail(err)
			return
		}
		delta, ok := memcproto.Float64At(f.Extras, 10)
		if !ok {
			fail(memcproto.ErrBadExtras)
			return
		}
		okJSON(conn.SubdocCounter(ctx, vbID, key, path, delta, f.CAS, now))
	case memcproto.OpXDCRSet:
		xe, err := memcproto.DecodeXDCRExtras(f.Extras)
		if err != nil {
			fail(err)
			return
		}
		applied, err := conn.XDCRApply(ctx, vbID, key, copyBytes(f.Value), xe.Deleted, f.CAS, xe.RevSeqno, xe.Flags, xe.Expiry)
		if err != nil {
			fail(err)
			return
		}
		v := []byte{0}
		if applied {
			v[0] = 1
		}
		c.respond(f, memcproto.StatusOK, memcproto.AppendEpoch(nil, c.srv.epoch()), v, 0)
	default:
		c.respond(f, memcproto.StatusNotSupported, memcproto.AppendEpoch(nil, c.srv.epoch()),
			[]byte("opcode "+f.Opcode.String()+" not supported"), 0)
	}
}

// handleDCP serves stream requests, failover-log fetches, and
// replication acks. Each accepted stream gets a pump goroutine
// pushing mutation frames tagged with the request's opaque; the
// consumer side dedicates a connection per stream, so pushes never
// compete with a request/response conversation.
func (c *session) handleDCP(f *memcproto.Frame) {
	vbID := int(f.VBucket)
	name := string(f.Key)
	extras := memcproto.AppendEpoch(nil, c.srv.epoch())

	vb, err := c.srv.cfg.Cluster.NodeVB(c.srv.cfg.Node, c.srv.cfg.Bucket, vbID)
	if err == nil && vb == nil {
		err = vbucket.ErrNotMyVBucket
	}
	if err != nil {
		if f.Opcode != memcproto.OpDCPAck {
			c.respondErr(f, err)
		}
		return
	}
	producer := vb.Producer()

	switch f.Opcode {
	case memcproto.OpDCPFailoverLog:
		value, _ := json.Marshal(producer.FailoverLog())
		c.respond(f, memcproto.StatusOK, memcproto.AppendUint64(extras, producer.HighSeqno()), value, 0)

	case memcproto.OpDCPAck:
		seqno, ok := memcproto.Uint64At(f.Extras, 0)
		if !ok {
			return
		}
		// The ack names the replica the same way the in-process
		// replicator does: the stream "replica:<addr>" acks as <addr>.
		vb.AckReplica(strings.TrimPrefix(name, "replica:"), seqno)

	case memcproto.OpDCPStreamReq:
		se, err := memcproto.DecodeStreamReqExtras(f.Extras)
		if err != nil {
			c.respondErr(f, err)
			return
		}
		ms, err := producer.ResumeStream(name, se.UUID, se.FromSeqno)
		var rb *dcp.RollbackError
		if errors.As(err, &rb) {
			// Rollback handshake: ship the divergence point; the
			// consumer rewinds and re-requests.
			ex := memcproto.AppendUint64(memcproto.AppendUint64(extras, rb.UUID), rb.Seqno)
			c.respond(f, memcproto.StatusRollback, ex, []byte(err.Error()), 0)
			return
		}
		if err != nil {
			c.respondErr(f, err)
			return
		}
		c.mu.Lock()
		old := c.streams[streamKey{vbID, name}]
		c.streams[streamKey{vbID, name}] = &servedStream{stream: ms, srcVB: vb}
		c.mu.Unlock()
		if old != nil {
			old.stream.Close()
		}
		c.respond(f, memcproto.StatusOK, memcproto.AppendUint64(extras, ms.StreamUUID()), nil, 0)
		go c.pumpStream(f.Opaque, vbID, name, se.FromSeqno, producer, ms)
	}
}

// pumpStream pushes one stream's mutations until it ends or the
// session dies.
func (c *session) pumpStream(opaque uint32, vbID int, name string, fromSeqno uint64, producer dcp.StreamSource, ms dcp.MutationStream) {
	streamsServing.Add(1)
	defer streamsServing.Add(-1)

	e := events.New(events.DCP, events.SevInfo, "serving dcp stream over transport")
	e.Node, e.Bucket, e.VB = string(c.srv.cfg.Node), c.srv.cfg.Bucket, vbID
	e.Fields = map[string]string{"stream": name, "from_seqno": strconv.FormatUint(fromSeqno, 10)}
	events.Default.Publish(e)

	// Snapshot marker: the window the pushes that follow belong to.
	c.send(&memcproto.Frame{
		Magic: memcproto.MagicPush, Opcode: memcproto.OpDCPSnapshot,
		VBucket: uint16(vbID), Opaque: opaque,
		Extras: memcproto.AppendUint64(memcproto.AppendUint64(nil, fromSeqno), producer.HighSeqno()),
	})
	for m := range ms.C() {
		meta := memcproto.ItemMeta{
			Seqno: m.Seqno, RevSeqno: m.RevSeqno, Flags: m.Flags,
			Expiry: m.Expiry, Deleted: m.Deleted, Resident: true,
		}
		extras := memcproto.AppendItemMeta(nil, meta)
		var datatype byte
		// A sampled mutation propagates its trace context to the
		// consumer (replica), parented at this node's portion root, so
		// the replica's apply span lands in the same distributed trace.
		if id, spanID, ok := m.Trace.RootWire(); ok {
			extras = memcproto.AppendTraceContext(extras,
				memcproto.TraceContext{TraceID: id, SpanID: spanID, Sampled: true})
			datatype = memcproto.DatatypeTraceCtx
		}
		c.send(&memcproto.Frame{
			Magic: memcproto.MagicPush, Opcode: memcproto.OpDCPMutation,
			Datatype: datatype,
			VBucket:  uint16(vbID), Opaque: opaque, CAS: m.CAS,
			Extras: extras, Key: []byte(m.Key), Value: m.Value,
		})
	}
	c.send(&memcproto.Frame{
		Magic: memcproto.MagicPush, Opcode: memcproto.OpDCPStreamEnd,
		VBucket: uint16(vbID), Opaque: opaque,
	})
	c.mu.Lock()
	if c.streams[streamKey{vbID, name}] != nil && c.streams[streamKey{vbID, name}].stream == ms {
		delete(c.streams, streamKey{vbID, name})
	}
	c.mu.Unlock()
}

// kvResult labels a KV handler outcome for the per-opcode latency
// histogram: NMVB bounces get their own series so their fast turnaround
// does not flatter the op's real quantiles.
func kvResult(err error) string {
	if errors.Is(err, vbucket.ErrNotMyVBucket) {
		return "not_my_vbucket"
	}
	return "error"
}

// sliceFrom returns b[off:] or nil when b is shorter.
func sliceFrom(b []byte, off int) []byte {
	if len(b) < off {
		return nil
	}
	return b[off:]
}

func copyBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

func durOf(me memcproto.MutateExtras) core.DurabilityOptions {
	return core.DurabilityOptions{
		ReplicateTo: int(me.ReplicateTo),
		PersistTo:   me.Persist,
		Timeout:     time.Duration(me.TimeoutMillis) * time.Millisecond,
	}
}
