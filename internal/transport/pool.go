package transport

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"couchgo/internal/core"
	"couchgo/internal/memcproto"
)

// dialTimeout bounds one connection attempt; reconnectMaxBackoff caps
// the fail-fast window after repeated dial failures — the same capped
// backoff+jitter shape the client's route loop uses, enforced at the
// pool so a dead node costs one dial per window, not one per request.
const (
	dialTimeout         = 2 * time.Second
	reconnectMaxBackoff = 250 * time.Millisecond
)

// Conn is one multiplexed client connection: requests are stamped
// with a unique opaque, responses are demuxed back to the waiting
// caller. All socket writes happen on a single writer goroutine fed
// by a channel — no mutex is ever held across a socket write (the
// couchvet lockblock rule enforces exactly that shape).
type Conn struct {
	addr    string
	nc      net.Conn
	br      *bufio.Reader // readLoop-only; batches pipelined responses into one syscall
	writeCh chan *[]byte
	closed  chan struct{}

	mu      sync.Mutex // guards pending/opaque/dead; never held across I/O
	pending map[uint32]chan *memcproto.Frame
	opaque  uint32
	dead    bool
	err     error
}

func dialConn(addr string) (*Conn, error) {
	raw, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		mDialErrors.Inc()
		return nil, fmt.Errorf("transport: dial %s: %v: %w", addr, err, core.ErrNodeUnreachable)
	}
	c := &Conn{
		addr:    addr,
		nc:      countingConn{raw},
		writeCh: make(chan *[]byte, 64),
		closed:  make(chan struct{}),
		pending: map[uint32]chan *memcproto.Frame{},
	}
	c.br = bufio.NewReaderSize(c.nc, 32<<10)
	mConnsCli.Add(1)
	go c.writeLoop()
	go c.readLoop()
	return c, nil
}

// writeLoop is the only goroutine that touches the socket's write
// side. Queued frames are coalesced into single syscalls.
func (c *Conn) writeLoop() {
	if err := writeCoalesced(c.nc, c.writeCh, c.closed); err != nil {
		c.fail(err)
	}
}

// readLoop is the only goroutine that touches the socket's read side;
// it demuxes response frames to waiting callers by opaque.
func (c *Conn) readLoop() {
	for {
		f, err := memcproto.Read(c.br)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[f.Opaque]
		delete(c.pending, f.Opaque)
		c.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

// fail marks the conn dead and wakes every waiter with the error.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.err = err
	pending := c.pending
	c.pending = map[uint32]chan *memcproto.Frame{}
	c.mu.Unlock()

	close(c.closed)
	c.nc.Close()
	mConnsCli.Add(-1)
	for _, ch := range pending {
		close(ch)
	}
}

// Close tears the connection down; in-flight requests fail with
// ErrNodeUnreachable.
func (c *Conn) Close() { c.fail(fmt.Errorf("transport: conn closed")) }

// respChans recycles the one-shot response channels Roundtrip
// registers per request; a cap-1 chan allocation per op adds up on the
// hot path. A channel only returns to the pool when it is provably
// empty and unclosed (see abandon).
var respChans = sync.Pool{New: func() any { return make(chan *memcproto.Frame, 1) }}

// Roundtrip sends one request frame and waits for its response.
// Failures (conn death, ctx cancellation) wrap core.ErrNodeUnreachable
// so the route loop treats them as a retryable topology wobble.
func (c *Conn) Roundtrip(ctx context.Context, f *memcproto.Frame) (*memcproto.Frame, error) {
	c.mu.Lock()
	if c.dead {
		err := c.err
		c.mu.Unlock()
		return nil, fmt.Errorf("transport: %s: %v: %w", c.addr, err, core.ErrNodeUnreachable)
	}
	c.opaque++
	f.Opaque = c.opaque
	ch := respChans.Get().(chan *memcproto.Frame)
	c.pending[f.Opaque] = ch
	c.mu.Unlock()

	buf, err := encodeFrame(f)
	if err != nil {
		c.abandon(f.Opaque, ch)
		return nil, err
	}
	select {
	case c.writeCh <- buf:
	case <-c.closed:
		recycleBuf(buf)
		c.abandon(f.Opaque, ch)
		return nil, fmt.Errorf("transport: %s: conn died: %w", c.addr, core.ErrNodeUnreachable)
	case <-ctx.Done():
		recycleBuf(buf)
		c.abandon(f.Opaque, ch)
		return nil, ctx.Err()
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("transport: %s: conn died mid-request: %w", c.addr, core.ErrNodeUnreachable)
		}
		respChans.Put(ch)
		return resp, nil
	case <-ctx.Done():
		c.abandon(f.Opaque, ch)
		return nil, ctx.Err()
	}
}

// abandon gives up on a registered request. If the opaque was still
// pending, nobody else can touch ch and it goes straight back to the
// pool. Otherwise readLoop (a send is imminent or buffered) or fail
// (close) already claimed it: consume the outcome, and recycle only
// after a received value — a closed channel is dead to the pool.
func (c *Conn) abandon(opaque uint32, ch chan *memcproto.Frame) {
	c.mu.Lock()
	_, pending := c.pending[opaque]
	delete(c.pending, opaque)
	c.mu.Unlock()
	if pending {
		respChans.Put(ch)
		return
	}
	if _, ok := <-ch; ok {
		respChans.Put(ch)
	}
}

// poolEntry tracks one node's connection plus its reconnect backoff
// state.
type poolEntry struct {
	conn     *Conn
	failures int
	nextTry  time.Time
}

// Pool hands out one live multiplexed Conn per node address, redialing
// dead ones behind a capped, jittered backoff: inside the backoff
// window Get fails fast with ErrNodeUnreachable and the caller's route
// loop does the sleeping.
type Pool struct {
	mu    sync.Mutex
	conns map[string]*poolEntry
}

// NewPool builds an empty client pool.
func NewPool() *Pool {
	return &Pool{conns: map[string]*poolEntry{}}
}

// Get returns the live conn for addr, dialing if needed.
func (p *Pool) Get(addr string) (*Conn, error) {
	p.mu.Lock()
	e := p.conns[addr]
	if e == nil {
		e = &poolEntry{}
		p.conns[addr] = e
	}
	if e.conn != nil && !e.conn.isDead() {
		c := e.conn
		p.mu.Unlock()
		return c, nil
	}
	if !e.nextTry.IsZero() && time.Now().Before(e.nextTry) {
		p.mu.Unlock()
		return nil, fmt.Errorf("transport: %s: in reconnect backoff: %w", addr, core.ErrNodeUnreachable)
	}
	p.mu.Unlock()

	// Dial outside the lock; losers of a dial race close their extra.
	c, err := dialConn(addr)

	p.mu.Lock()
	defer p.mu.Unlock()
	e = p.conns[addr]
	if err != nil {
		e.failures++
		e.nextTry = time.Now().Add(reconnectBackoff(e.failures))
		return nil, err
	}
	if e.conn != nil && !e.conn.isDead() {
		c.Close()
		return e.conn, nil
	}
	e.conn = c
	e.failures = 0
	e.nextTry = time.Time{}
	return c, nil
}

// reconnectBackoff computes the fail-fast window after the Nth
// consecutive dial failure: exponential in failures, capped at
// reconnectMaxBackoff, with ±50% jitter so a restarted node is not
// hit by every client on the same tick. Get never sleeps this out —
// it returns ErrNodeUnreachable immediately and the window only
// gates when the next dial may be attempted.
func reconnectBackoff(failures int) time.Duration {
	backoff := time.Millisecond << min(failures, 10)
	if backoff > reconnectMaxBackoff {
		backoff = reconnectMaxBackoff
	}
	// ±50% jitter, mirroring the route loop's.
	backoff += time.Duration(rand.Int63n(int64(backoff))) - backoff/2
	return backoff
}

// Drop closes and forgets addr's conn (e.g. the node was failed over).
func (p *Pool) Drop(addr string) {
	p.mu.Lock()
	e := p.conns[addr]
	delete(p.conns, addr)
	p.mu.Unlock()
	if e != nil && e.conn != nil {
		e.conn.Close()
	}
}

// Close tears down every conn.
func (p *Pool) Close() {
	p.mu.Lock()
	conns := p.conns
	p.conns = map[string]*poolEntry{}
	p.mu.Unlock()
	for _, e := range conns {
		if e.conn != nil {
			e.conn.Close()
		}
	}
}

func (c *Conn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}
