package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"couchgo/internal/core"
	"couchgo/internal/dcp"
	"couchgo/internal/memcproto"
	"couchgo/internal/trace"
)

// RemoteProducer is a dcp.StreamSource that lives on the far side of
// a socket: the feed/replication consumer speaks to it exactly as it
// would to a local *dcp.Producer, and every stream it opens rides a
// dedicated connection so a slow consumer never head-of-line-blocks
// request/response traffic.
type RemoteProducer struct {
	addr string
	vb   int
}

var _ dcp.StreamSource = (*RemoteProducer)(nil)

// NewRemoteProducer addresses vbID's producer on the node at addr.
func NewRemoteProducer(addr string, vb int) *RemoteProducer {
	return &RemoteProducer{addr: addr, vb: vb}
}

// dcpExchange runs one request/response on a short-lived dedicated
// conn.
func (rp *RemoteProducer) dcpExchange(f *memcproto.Frame) (*memcproto.Frame, error) {
	raw, err := net.DialTimeout("tcp", rp.addr, dialTimeout)
	if err != nil {
		mDialErrors.Inc()
		return nil, fmt.Errorf("transport: dial %s: %v: %w", rp.addr, err, core.ErrNodeUnreachable)
	}
	defer raw.Close()
	nc := countingConn{raw}
	if _, err := f.WriteTo(nc); err != nil {
		return nil, fmt.Errorf("transport: %s: %v: %w", rp.addr, err, core.ErrNodeUnreachable)
	}
	resp, err := memcproto.Read(nc)
	if err != nil {
		return nil, fmt.Errorf("transport: %s: %v: %w", rp.addr, err, core.ErrNodeUnreachable)
	}
	return resp, nil
}

// failoverLog fetches the vBucket's history plus its high seqno.
func (rp *RemoteProducer) failoverLog() ([]dcp.FailoverEntry, uint64, error) {
	resp, err := rp.dcpExchange(&memcproto.Frame{
		Magic:   memcproto.MagicReq,
		Opcode:  memcproto.OpDCPFailoverLog,
		VBucket: uint16(rp.vb),
		Opaque:  1,
	})
	if err != nil {
		return nil, 0, err
	}
	if resp.Status != memcproto.StatusOK {
		return nil, 0, errOf(resp.Status, resp.Value)
	}
	var entries []dcp.FailoverEntry
	if err := json.Unmarshal(resp.Value, &entries); err != nil {
		return nil, 0, err
	}
	high, _ := memcproto.Uint64At(resp.Extras, memcproto.EpochLen)
	return entries, high, nil
}

// FailoverLog returns the remote vBucket's history branches (nil on
// transport failure — the caller's resume handshake surfaces the real
// error).
func (rp *RemoteProducer) FailoverLog() []dcp.FailoverEntry {
	entries, _, err := rp.failoverLog()
	if err != nil {
		return nil
	}
	return entries
}

// HighSeqno reports the remote producer's high seqno (0 on transport
// failure).
func (rp *RemoteProducer) HighSeqno() uint64 {
	_, high, err := rp.failoverLog()
	if err != nil {
		return 0
	}
	return high
}

// ResumeStream opens a named stream at (uuid, fromSeqno) over a
// dedicated connection. A rollback rejection comes back as
// *dcp.RollbackError exactly like the in-process producer's. The
// returned stream is a *RemoteStream; replication consumers assert
// that to send durability acks.
func (rp *RemoteProducer) ResumeStream(name string, uuid, fromSeqno uint64) (dcp.MutationStream, error) {
	raw, err := net.DialTimeout("tcp", rp.addr, dialTimeout)
	if err != nil {
		mDialErrors.Inc()
		return nil, fmt.Errorf("transport: dial %s: %v: %w", rp.addr, err, core.ErrNodeUnreachable)
	}
	nc := countingConn{Conn: raw}
	req := &memcproto.Frame{
		Magic:   memcproto.MagicReq,
		Opcode:  memcproto.OpDCPStreamReq,
		VBucket: uint16(rp.vb),
		Opaque:  1,
		Extras:  memcproto.StreamReqExtras{UUID: uuid, FromSeqno: fromSeqno}.Encode(),
		Key:     []byte(name),
	}
	if _, err := req.WriteTo(nc); err != nil {
		raw.Close()
		return nil, fmt.Errorf("transport: %s: %v: %w", rp.addr, err, core.ErrNodeUnreachable)
	}
	resp, err := memcproto.Read(nc)
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("transport: %s: %v: %w", rp.addr, err, core.ErrNodeUnreachable)
	}
	switch resp.Status {
	case memcproto.StatusOK:
	case memcproto.StatusRollback:
		raw.Close()
		rbUUID, _ := memcproto.Uint64At(resp.Extras, memcproto.EpochLen)
		rbSeqno, _ := memcproto.Uint64At(resp.Extras, memcproto.EpochLen+8)
		return nil, &dcp.RollbackError{UUID: rbUUID, Seqno: rbSeqno}
	default:
		raw.Close()
		return nil, errOf(resp.Status, resp.Value)
	}
	streamUUID, _ := memcproto.Uint64At(resp.Extras, memcproto.EpochLen)

	rs := &RemoteStream{
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 32<<10),
		vb:      rp.vb,
		name:    name,
		uuid:    streamUUID,
		out:     make(chan dcp.Mutation, 256),
		writeCh: make(chan *[]byte, 64),
		closed:  make(chan struct{}),
	}
	mConnsCli.Add(1)
	go rs.writeLoop()
	go rs.readLoop()
	return rs, nil
}

// RemoteStream is the consumer end of one DCP stream over a socket.
// It implements dcp.MutationStream; Ack additionally reports applied
// seqnos back to the producer for replication durability.
type RemoteStream struct {
	nc      net.Conn
	br      *bufio.Reader // readLoop-only; batches pushed mutations into one syscall
	vb      int
	name    string
	uuid    uint64
	out     chan dcp.Mutation
	writeCh chan *[]byte
	closed  chan struct{}
	once    sync.Once

	processed atomic.Uint64
}

var _ dcp.MutationStream = (*RemoteStream)(nil)

// C returns the mutation channel; it closes when the stream ends.
func (rs *RemoteStream) C() <-chan dcp.Mutation { return rs.out }

// StreamUUID is the vBucket UUID the stream was accepted under.
func (rs *RemoteStream) StreamUUID() uint64 { return rs.uuid }

// Processed is the seqno of the last mutation delivered.
func (rs *RemoteStream) Processed() uint64 { return rs.processed.Load() }

// Close tears the stream's connection down; the producer side sees
// EOF and closes its end.
func (rs *RemoteStream) Close() {
	rs.once.Do(func() {
		close(rs.closed)
		rs.nc.Close()
		mConnsCli.Add(-1)
	})
}

// Ack reports an applied seqno to the producer (fire-and-forget; the
// server routes it to the active vBucket's replica ack set).
func (rs *RemoteStream) Ack(seqno uint64) {
	f := &memcproto.Frame{
		Magic:   memcproto.MagicReq,
		Opcode:  memcproto.OpDCPAck,
		VBucket: uint16(rs.vb),
		Key:     []byte(rs.name),
		Extras:  memcproto.AppendUint64(nil, seqno),
	}
	buf, err := encodeFrame(f)
	if err != nil {
		return
	}
	select {
	case rs.writeCh <- buf:
	case <-rs.closed:
		recycleBuf(buf)
	}
}

// writeLoop is the stream's only socket writer (acks), with queued
// acks coalesced into single syscalls. A write error is not handled
// here: the read side sees the broken conn and closes the stream.
func (rs *RemoteStream) writeLoop() {
	_ = writeCoalesced(rs.nc, rs.writeCh, rs.closed)
}

// readLoop turns pushed frames back into dcp.Mutations; it is the
// sole closer of the out channel.
func (rs *RemoteStream) readLoop() {
	defer close(rs.out)
	for {
		f, err := memcproto.Read(rs.br)
		if err != nil {
			rs.Close()
			return
		}
		if f.Magic != memcproto.MagicPush {
			continue
		}
		switch f.Opcode {
		case memcproto.OpDCPSnapshot:
			// Snapshot window marker; the in-process consumers don't
			// track windows, so neither do we.
		case memcproto.OpDCPMutation:
			tc, bare, err := memcproto.SplitTraceContext(f)
			if err != nil {
				continue
			}
			f.Extras = bare
			meta, err := memcproto.DecodeItemMeta(f.Extras)
			if err != nil {
				continue
			}
			m := dcp.Mutation{
				VB:       int(f.VBucket),
				Key:      string(f.Key),
				Seqno:    meta.Seqno,
				CAS:      f.CAS,
				RevSeqno: meta.RevSeqno,
				Flags:    meta.Flags,
				Expiry:   meta.Expiry,
				Deleted:  meta.Deleted,
			}
			// A pushed trace context continues the producer's trace on
			// this node: the apply path's replica:apply span attaches
			// to the local foreign portion rooted under the remote
			// span.
			if tc.Valid() && tc.Sampled {
				m.Trace = trace.Default.Adopt(tc.TraceID, tc.SpanID)
			}
			if len(f.Value) > 0 {
				m.Value = append([]byte(nil), f.Value...)
			}
			select {
			case rs.out <- m:
				rs.processed.Store(m.Seqno)
			case <-rs.closed:
				return
			}
		case memcproto.OpDCPStreamEnd:
			rs.Close()
			return
		}
	}
}
