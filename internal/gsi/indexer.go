package gsi

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"couchgo/internal/btree"
	"couchgo/internal/value"
)

// KeyVersion is the maintenance message flowing projector → router →
// indexer: the set of secondary keys a document now contributes to one
// index. Empty Entries means "remove any previous contribution" (the
// document was deleted, stopped qualifying, or this message is a pure
// seqno sync so request_plus consistency can make progress).
type KeyVersion struct {
	Index string
	VB    int
	Seqno uint64
	DocID string
	// Entries are composite secondary keys ([]any per entry; several
	// for array indexes).
	Entries [][]any
}

// ScanItem is one index scan result.
type ScanItem struct {
	DocID  string
	SecKey []any // the indexed values (covering scans project these)
}

// ScanOptions bound an index scan. Low/High are composite key prefixes
// in collation order; nil means unbounded.
type ScanOptions struct {
	Low, High         []any
	LowIncl, HighIncl bool
	// EqualKey scans exactly one key (overrides Low/High).
	EqualKey []any
	HasEqual bool
	Limit    int // 0 = unlimited
	Reverse  bool
	// Consistency: nil = not_bounded ("the query can return data that
	// is currently indexed"); non-nil = request_plus ("requires all
	// mutations, up to the moment of the query request, to be
	// processed before query execution").
	WaitSeqnos map[int]uint64
}

// Indexer maintains one partition of one index — "the indexer
// component processes the changes received from the router and manages
// the on-disk index tree data structure".
type Indexer struct {
	def  *compiledDef
	part int

	mu        sync.Mutex
	tree      *btree.Tree
	back      map[string][][]byte // docID -> tree keys
	processed map[int]uint64      // vb -> seqno
	// lastSeq guards against out-of-order redelivery: the initial-build
	// backfill stream races the steady-state projector stream, and a
	// document's index contribution must only ever move forward.
	lastSeq map[string]uint64
	// docVB records which vBucket last contributed each document, so
	// PurgeVB can drop one partition's state on rollback.
	docVB  map[string]int
	cond   *sync.Cond
	closed bool

	// Standard mode: the append-only maintenance log (real disk I/O on
	// the maintenance path, as with the on-disk index of 4.1).
	log        *os.File
	logW       *bufio.Writer
	pendingOps int
}

// NewStandaloneIndexer compiles def and creates a single-partition
// indexer outside a Service — benchmarks and embedding use it to
// exercise the maintenance path in isolation.
func NewStandaloneIndexer(def Def, logPath string) (*Indexer, error) {
	cd, err := compileDef(def)
	if err != nil {
		return nil, err
	}
	return NewIndexer(cd, 0, logPath)
}

// NewIndexer creates a partition indexer. logPath is required for
// Standard mode and ignored for MemoryOptimized.
func NewIndexer(cd *compiledDef, part int, logPath string) (*Indexer, error) {
	ix := &Indexer{
		def:       cd,
		part:      part,
		tree:      btree.New(nil),
		back:      make(map[string][][]byte),
		processed: make(map[int]uint64),
		lastSeq:   make(map[string]uint64),
		docVB:     make(map[string]int),
	}
	ix.cond = sync.NewCond(&ix.mu)
	if cd.Mode == Standard {
		f, err := os.OpenFile(logPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, err
		}
		ix.log = f
		ix.logW = bufio.NewWriter(f)
	}
	return ix, nil
}

// treeKey is the composite tree key: encoded secondary key values,
// 0x00 separator, then the document ID.
func indexTreeKey(sec []any, docID string) []byte {
	enc := value.EncodeKey(sec)
	out := make([]byte, 0, len(enc)+1+len(docID))
	out = append(out, enc...)
	out = append(out, 0x00)
	return append(out, docID...)
}

// Apply installs one key version. Calls arrive in per-vBucket seqno
// order from the router.
func (ix *Indexer) Apply(kv KeyVersion) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return
	}
	if kv.Seqno <= ix.lastSeq[kv.DocID] {
		// Stale or duplicate delivery (backfill racing the live feed):
		// the consistency vector may still advance, the entries may not.
		if kv.Seqno > ix.processed[kv.VB] {
			ix.processed[kv.VB] = kv.Seqno
			ix.cond.Broadcast()
		}
		return
	}
	mIndexed.Inc()
	ix.lastSeq[kv.DocID] = kv.Seqno
	ix.docVB[kv.DocID] = kv.VB
	old := ix.back[kv.DocID]
	for _, tk := range old {
		ix.tree.Delete(tk)
	}
	delete(ix.back, kv.DocID)
	var keys [][]byte
	for _, sec := range kv.Entries {
		tk := indexTreeKey(sec, kv.DocID)
		ix.tree.Set(tk, ScanItem{DocID: kv.DocID, SecKey: sec})
		keys = append(keys, tk)
	}
	if keys != nil {
		ix.back[kv.DocID] = keys
	}
	if kv.Seqno > ix.processed[kv.VB] {
		ix.processed[kv.VB] = kv.Seqno
	}
	if ix.logW != nil && (len(old) > 0 || len(keys) > 0) {
		ix.appendLogLocked(kv)
	}
	ix.cond.Broadcast()
}

// appendLogLocked writes the maintenance op to the disk log. Flushed
// (with the real write syscall) every few ops — the disk dependence the
// memory-optimized mode of §6.1.1 removes.
func (ix *Indexer) appendLogLocked(kv KeyVersion) {
	var hdr [14]byte
	binary.LittleEndian.PutUint64(hdr[0:], kv.Seqno)
	binary.LittleEndian.PutUint16(hdr[8:], uint16(len(kv.DocID)))
	binary.LittleEndian.PutUint32(hdr[10:], uint32(len(kv.Entries)))
	ix.logW.Write(hdr[:])
	ix.logW.WriteString(kv.DocID)
	for _, sec := range kv.Entries {
		enc := value.EncodeKey(sec)
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(enc)))
		ix.logW.Write(l[:])
		ix.logW.Write(enc)
	}
	ix.pendingOps++
	if ix.pendingOps >= 16 {
		// Commit the batch: flush and fsync, the disk dependence of the
		// standard (4.1) mode that §6.1.1's memory-optimized indexes
		// remove from the maintenance path.
		ix.logW.Flush()
		ix.log.Sync()
		ix.pendingOps = 0
	}
}

// PurgeVB drops one vBucket's contribution entirely: tree entries,
// back-index rows, seqno guards, and the consistency-vector slot. The
// feed layer calls it on rollback, when a promoted copy's history is
// shorter than what this partition already applied; clearing lastSeq
// is what lets the re-streamed (lower-seqno) versions apply again.
func (ix *Indexer) PurgeVB(vb int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return
	}
	for doc, dvb := range ix.docVB {
		if dvb != vb {
			continue
		}
		for _, tk := range ix.back[doc] {
			ix.tree.Delete(tk)
		}
		delete(ix.back, doc)
		delete(ix.lastSeq, doc)
		delete(ix.docVB, doc)
	}
	delete(ix.processed, vb)
	ix.cond.Broadcast()
}

// Processed returns a copy of the applied-seqno vector.
func (ix *Indexer) Processed() map[int]uint64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	out := make(map[int]uint64, len(ix.processed))
	for vb, s := range ix.processed {
		out[vb] = s
	}
	return out
}

// waitFor blocks until the indexer has processed the seqno vector
// (request_plus) or ctx is cancelled; cancellation wakes the wait
// through the condition variable's Broadcast.
func (ix *Indexer) waitFor(ctx context.Context, seqnos map[int]uint64) error {
	stop := context.AfterFunc(ctx, func() { ix.cond.Broadcast() })
	defer stop()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for !ix.closed {
		if err := ctx.Err(); err != nil {
			return err
		}
		ok := true
		for vb, want := range seqnos {
			if want > 0 && ix.processed[vb] < want {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		ix.cond.Wait()
	}
	return nil
}

// Scan runs a range or equality scan on this partition.
func (ix *Indexer) Scan(ctx context.Context, opts ScanOptions) ([]ScanItem, error) {
	if opts.WaitSeqnos != nil {
		if err := ix.waitFor(ctx, opts.WaitSeqnos); err != nil {
			return nil, err
		}
	}
	lo, hi := scanBounds(opts)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var out []ScanItem
	visit := func(_ []byte, v any) bool {
		out = append(out, v.(ScanItem))
		return opts.Limit == 0 || len(out) < opts.Limit
	}
	if opts.Reverse {
		ix.tree.Descend(lo, hi, visit)
	} else {
		ix.tree.Ascend(lo, hi, visit)
	}
	return out, nil
}

// CountRange counts entries in the range without materializing them.
// Counts serve planner statistics, not request paths, so there is no
// ctx to thread.
func (ix *Indexer) CountRange(opts ScanOptions) int {
	if opts.WaitSeqnos != nil {
		ix.waitFor(context.Background(), opts.WaitSeqnos)
	}
	lo, hi := scanBounds(opts)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := 0
	ix.tree.Ascend(lo, hi, func(_ []byte, _ any) bool { n++; return true })
	return n
}

// scanBounds converts composite bounds into tree-key bounds.
//
// Low/High have *prefix semantics*: an entry qualifies by comparing its
// first len(bound) key positions against the bound. So High=["SF"]
// inclusive matches every entry whose leading key is "SF" regardless of
// trailing positions, and Low=["SF"] exclusive skips them all — exactly
// the spans a planner generates for predicates on a composite index's
// leading keys.
//
// Byte translation: strip the bound encoding's array terminator to get
// prefix P. Every entry whose leading positions equal the bound starts
// with P and continues with a byte < 0xFF (a type tag or terminator),
// so P itself is the inclusive lower edge and P||0xFF is the exclusive
// upper edge of the "equal prefix" region.
func scanBounds(opts ScanOptions) (lo, hi []byte) {
	if opts.HasEqual {
		enc := value.EncodeKey(opts.EqualKey)
		lo = append(append([]byte{}, enc...), 0x00)
		hi = append(append([]byte{}, enc...), 0x01)
		return lo, hi
	}
	if opts.Low != nil {
		p := prefixEncode(opts.Low)
		if opts.LowIncl {
			lo = p
		} else {
			lo = append(p, 0xFF)
		}
	}
	if opts.High != nil {
		p := prefixEncode(opts.High)
		if opts.HighIncl {
			hi = append(p, 0xFF)
		} else {
			hi = p
		}
	}
	return lo, hi
}

// prefixEncode encodes a composite key as an open prefix (terminator
// stripped) so it sorts before any extension of itself.
func prefixEncode(sec []any) []byte {
	enc := value.EncodeKey(sec)
	// EncodeKey of an array ends with its 0x00 terminator; strip it.
	if len(enc) > 0 && enc[len(enc)-1] == 0x00 {
		enc = enc[:len(enc)-1]
	}
	return enc
}

// Stats reports indexer size for diagnostics.
type IndexerStats struct {
	Entries int
	Docs    int
}

// Stats returns current counters.
func (ix *Indexer) Stats() IndexerStats {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return IndexerStats{Entries: ix.tree.Len(), Docs: len(ix.back)}
}

// SnapshotTo writes a recoverable snapshot of a memory-optimized index
// ("recoverability is provided via disk-backups", §6.1.1).
func (ix *Indexer) SnapshotTo(w io.Writer) error {
	ix.mu.Lock()
	var rows []ScanItem
	ix.tree.Ascend(nil, nil, func(_ []byte, v any) bool {
		rows = append(rows, v.(ScanItem))
		return true
	})
	processed := make(map[int]uint64, len(ix.processed))
	for vb, s := range ix.processed {
		processed[vb] = s
	}
	ix.mu.Unlock()

	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(rows)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(processed)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for vb, s := range processed {
		var rec [12]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(vb))
		binary.LittleEndian.PutUint64(rec[4:], s)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	for _, r := range rows {
		payload := value.Marshal(map[string]any{"id": r.DocID, "sec": append([]any{}, r.SecKey...)})
		var l [8]byte
		binary.LittleEndian.PutUint32(l[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(l[4:], crc32.ChecksumIEEE(payload))
		if _, err := bw.Write(l[:]); err != nil {
			return err
		}
		if _, err := bw.Write(payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RestoreFrom rebuilds the index from a snapshot.
func (ix *Indexer) RestoreFrom(r io.Reader) error {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return err
	}
	nRows := binary.LittleEndian.Uint32(hdr[0:])
	nVBs := binary.LittleEndian.Uint32(hdr[4:])
	processed := make(map[int]uint64, nVBs)
	for i := uint32(0); i < nVBs; i++ {
		var rec [12]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return err
		}
		processed[int(binary.LittleEndian.Uint32(rec[0:]))] = binary.LittleEndian.Uint64(rec[4:])
	}
	tree := btree.New(nil)
	back := make(map[string][][]byte)
	for i := uint32(0); i < nRows; i++ {
		var l [8]byte
		if _, err := io.ReadFull(br, l[:]); err != nil {
			return err
		}
		payload := make([]byte, binary.LittleEndian.Uint32(l[0:]))
		if _, err := io.ReadFull(br, payload); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(l[4:]) {
			return fmt.Errorf("gsi: snapshot row %d corrupt", i)
		}
		obj, ok := value.Parse(payload)
		if !ok {
			return fmt.Errorf("gsi: snapshot row %d unparsable", i)
		}
		id, _ := value.Field(obj, "id").(string)
		sec, _ := value.Field(obj, "sec").([]any)
		tk := indexTreeKey(sec, id)
		tree.Set(tk, ScanItem{DocID: id, SecKey: sec})
		back[id] = append(back[id], tk)
	}
	ix.mu.Lock()
	ix.tree = tree
	ix.back = back
	ix.processed = processed
	ix.mu.Unlock()
	return nil
}

// Close releases resources.
func (ix *Indexer) Close() {
	ix.mu.Lock()
	ix.closed = true
	if ix.logW != nil {
		ix.logW.Flush()
	}
	ix.cond.Broadcast()
	ix.mu.Unlock()
	if ix.log != nil {
		ix.log.Close()
	}
}
