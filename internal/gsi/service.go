package gsi

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"couchgo/internal/dcp"
	"couchgo/internal/feed"
	"couchgo/internal/metrics"
	"couchgo/internal/value"
)

// Drain-rate counters for the §4.4.2 projector→indexer pipeline:
// mutations the projector routed toward index builds versus entries
// the indexers actually applied. Their rates diverging means an
// indexer is falling behind its stream.
var (
	mProjected = metrics.Default.Counter("couchgo_gsi_projected_total")
	mIndexed   = metrics.Default.Counter("couchgo_gsi_indexed_total")
)

// Service is the index service of one cluster (logically; partitions
// may be placed on different index nodes — in this reproduction the
// Service owns every partition indexer and the cluster layer decides
// which node runs the Service, per multi-dimensional scaling).
//
// It plays the paper's Index Manager role: "receiving requests for
// indexing operations (e.g., creation, deletion, maintenance, scan,
// lookup)".
type Service struct {
	dir string

	mu      sync.Mutex
	indexes map[string]*indexState // key: keyspace + "/" + name
	// projectors: one shared projector per keyspace. The projector's
	// feed state (resume positions) lives here, at the service level,
	// so it survives vBucket movement between data nodes.
	projectors map[string]*Projector
}

type indexState struct {
	cd    *compiledDef
	parts []*Indexer
	built bool
}

// NewService creates an index service writing standard-mode logs under
// dir.
func NewService(dir string) *Service {
	return &Service{
		dir:        dir,
		indexes:    make(map[string]*indexState),
		projectors: make(map[string]*Projector),
	}
}

func indexKey(keyspace, name string) string { return keyspace + "/" + name }

// CreateIndex registers (and unless deferred, allows building of) an
// index.
func (s *Service) CreateIndex(def Def) error {
	cd, err := compileDef(def)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := indexKey(def.Keyspace, def.Name)
	if _, ok := s.indexes[key]; ok {
		return ErrIndexExists
	}
	st := &indexState{cd: cd, built: !def.Deferred}
	for p := 0; p < cd.NumPartitions; p++ {
		logPath := filepath.Join(s.dir, fmt.Sprintf("idx_%s_%s_p%d.log", sanitize(def.Keyspace), sanitize(def.Name), p))
		ix, err := NewIndexer(cd, p, logPath)
		if err != nil {
			return err
		}
		st.parts = append(st.parts, ix)
	}
	s.indexes[key] = st
	proj := s.projectors[def.Keyspace]
	s.mu.Unlock()
	// Initial build: stream the existing data set through this index
	// only. The per-document seqno guard in the indexer resolves races
	// with the steady-state projector feed.
	if !def.Deferred && proj != nil {
		proj.backfillIndex(st)
	}
	s.mu.Lock()
	return nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '/' || r == '\\' || r == ':' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

// BuildIndex builds a deferred index (§3.3.3's {"defer_build": true}):
// it backfills the existing data set and marks the index scannable.
func (s *Service) BuildIndex(keyspace, name string) error {
	s.mu.Lock()
	st, ok := s.indexes[indexKey(keyspace, name)]
	proj := s.projectors[keyspace]
	s.mu.Unlock()
	if !ok {
		return ErrNoSuchIndex
	}
	if proj != nil {
		proj.backfillIndex(st)
	}
	s.mu.Lock()
	st.built = true
	s.mu.Unlock()
	return nil
}

// DropIndex removes an index.
func (s *Service) DropIndex(keyspace, name string) error {
	s.mu.Lock()
	st, ok := s.indexes[indexKey(keyspace, name)]
	delete(s.indexes, indexKey(keyspace, name))
	s.mu.Unlock()
	if !ok {
		return ErrNoSuchIndex
	}
	for _, p := range st.parts {
		p.Close()
	}
	return nil
}

// IndexMeta is the catalog's view of an index (used by the planner).
type IndexMeta struct {
	Def
	SecCanonical   []string
	WhereCanonical string
	Built          bool
	IsArrayIndex   bool
}

// ListIndexes returns catalog metadata for a keyspace, sorted by name.
func (s *Service) ListIndexes(keyspace string) []IndexMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []IndexMeta
	for _, st := range s.indexes {
		if st.cd.Keyspace != keyspace {
			continue
		}
		out = append(out, IndexMeta{
			Def:            st.cd.Def,
			SecCanonical:   st.cd.SecCanonical,
			WhereCanonical: st.cd.WhereCanonical,
			Built:          st.built,
			IsArrayIndex:   st.cd.arrayKey != nil,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns one index's metadata.
func (s *Service) Lookup(keyspace, name string) (IndexMeta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.indexes[indexKey(keyspace, name)]
	if !ok {
		return IndexMeta{}, ErrNoSuchIndex
	}
	return IndexMeta{
		Def:            st.cd.Def,
		SecCanonical:   st.cd.SecCanonical,
		WhereCanonical: st.cd.WhereCanonical,
		Built:          st.built,
		IsArrayIndex:   st.cd.arrayKey != nil,
	}, nil
}

// Scan scatter/gathers over the index's partitions and merges results
// in collation order ("it does scatter/gather for queries in case of a
// partitioned GSI index"). The ctx bounds the request_plus
// consistency wait: a cancelled query releases its indexer waiters
// instead of parking until the seqno vector catches up.
func (s *Service) Scan(ctx context.Context, keyspace, name string, opts ScanOptions) ([]ScanItem, error) {
	s.mu.Lock()
	st, ok := s.indexes[indexKey(keyspace, name)]
	s.mu.Unlock()
	if !ok || !st.built {
		return nil, ErrNoSuchIndex
	}
	if len(st.parts) == 1 {
		return st.parts[0].Scan(ctx, opts)
	}
	results := make([][]ScanItem, len(st.parts))
	errs := make([]error, len(st.parts))
	var wg sync.WaitGroup
	for i, p := range st.parts {
		wg.Add(1)
		go func(i int, p *Indexer) {
			defer wg.Done()
			results[i], errs[i] = p.Scan(ctx, opts)
		}(i, p)
	}
	// Every partition scan observes ctx, so cancellation unblocks the
	// whole gather.
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := mergeScanItems(results, opts.Reverse)
	if opts.Limit > 0 && len(merged) > opts.Limit {
		merged = merged[:opts.Limit]
	}
	return merged, nil
}

// Count counts matching entries across partitions.
func (s *Service) Count(keyspace, name string, opts ScanOptions) (int, error) {
	s.mu.Lock()
	st, ok := s.indexes[indexKey(keyspace, name)]
	s.mu.Unlock()
	if !ok || !st.built {
		return 0, ErrNoSuchIndex
	}
	total := 0
	for _, p := range st.parts {
		total += p.CountRange(opts)
	}
	return total, nil
}

func mergeScanItems(parts [][]ScanItem, reverse bool) []ScanItem {
	var all []ScanItem
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		c := value.Compare(all[i].SecKey, all[j].SecKey)
		if c == 0 {
			if all[i].DocID == all[j].DocID {
				return false
			}
			if reverse {
				return all[i].DocID > all[j].DocID
			}
			return all[i].DocID < all[j].DocID
		}
		if reverse {
			return c > 0
		}
		return c < 0
	})
	return all
}

// Processed returns the minimum applied-seqno vector across an index's
// partitions — the consistency point a request_plus scan can rely on.
func (s *Service) Processed(keyspace, name string) (map[int]uint64, error) {
	s.mu.Lock()
	st, ok := s.indexes[indexKey(keyspace, name)]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNoSuchIndex
	}
	out := map[int]uint64{}
	for i, p := range st.parts {
		vec := p.Processed()
		if i == 0 {
			for vb, sq := range vec {
				out[vb] = sq
			}
			continue
		}
		for vb := range out {
			if vec[vb] < out[vb] {
				out[vb] = vec[vb]
			}
		}
	}
	return out, nil
}

// route delivers a mutation's key versions for every index on the
// keyspace. It implements both the Projector ("mapping incoming
// mutations to a set of Global Secondary Key Versions") and the Router
// ("deciding which indexer to send the message to").
func (s *Service) route(keyspace string, vb int, m dcp.Mutation) {
	s.mu.Lock()
	states := make([]*indexState, 0, len(s.indexes))
	for _, st := range s.indexes {
		if st.cd.Keyspace == keyspace {
			states = append(states, st)
		}
	}
	s.mu.Unlock()
	if len(states) > 0 {
		mProjected.Inc()
	}
	for _, st := range states {
		routeTo(st, vb, m)
	}
}

// routeTo projects one mutation into one index's partitions.
func routeTo(st *indexState, vb int, m dcp.Mutation) {
	var entries [][]any
	if !m.Deleted {
		if doc, ok := value.Parse(m.Value); ok {
			if ents, err := st.cd.entries(m.Key, doc, m.CAS); err == nil {
				entries = ents
			}
		}
	}
	target := st.cd.Partition(m.Key)
	for p, ix := range st.parts {
		kv := KeyVersion{Index: st.cd.Name, VB: vb, Seqno: m.Seqno, DocID: m.Key}
		if p == target {
			kv.Entries = entries
		}
		// Every partition sees every seqno (possibly as a pure sync or
		// a delete of a stale contribution) so consistency vectors
		// advance and moved documents get cleaned up.
		ix.Apply(kv)
	}
}

// Projector consumes the keyspace's per-vBucket DCP feeds and routes
// key versions to the indexers. One shared Projector exists per
// keyspace; every data node attaches its active vBuckets' producers
// through the same instance, so the feed layer's resume state follows
// partitions as they move between nodes.
type Projector struct {
	svc      *Service
	keyspace string
	hub      *feed.Hub
}

// NewProjector returns the keyspace's shared projector, creating it on
// first use and registering it with the service so CREATE INDEX can
// trigger initial builds over the projector's vBuckets.
func NewProjector(svc *Service, keyspace string) *Projector {
	// Construct outside svc.mu: the feed layer takes its own locks and
	// must never be entered with service state locked. A concurrent
	// first use loses the race below and discards its hub unsubscribed.
	np := &Projector{svc: svc, keyspace: keyspace, hub: feed.NewHub("gsi")}
	svc.mu.Lock()
	if p, ok := svc.projectors[keyspace]; ok {
		svc.mu.Unlock()
		return p
	}
	svc.projectors[keyspace] = np
	svc.mu.Unlock()
	np.hub.Subscribe("gsi-projector", np)
	return np
}

// Apply implements feed.Consumer: route one mutation's key versions to
// every index on the keyspace.
func (p *Projector) Apply(vb int, m dcp.Mutation) {
	p.svc.route(p.keyspace, vb, m)
}

// Rollback implements feed.Rollbacker: a promoted vBucket copy lacks
// mutations the indexers already applied, so purge the partition from
// every index on the keyspace and rebuild it from the re-streamed
// history. Without the purge the per-document seqno guard would
// reject the re-streamed (lower-seqno) versions and entries from the
// lost branch would linger as phantoms.
func (p *Projector) Rollback(vb int, _ uint64) uint64 {
	p.svc.mu.Lock()
	states := make([]*indexState, 0, len(p.svc.indexes))
	for _, st := range p.svc.indexes {
		if st.cd.Keyspace == p.keyspace {
			states = append(states, st)
		}
	}
	p.svc.mu.Unlock()
	for _, st := range states {
		for _, ix := range st.parts {
			ix.PurgeVB(vb)
		}
	}
	return 0
}

// AttachVB starts projecting a vBucket's mutations. Re-attaching the
// same producer is a no-op (idempotent reconciliation); a changed
// producer resumes from the recorded position, rolling indexes back
// first if the new producer's history demands it.
func (p *Projector) AttachVB(vb int, producer dcp.StreamSource) error {
	return p.hub.AttachVB(vb, producer)
}

// DetachVB stops projecting a vBucket.
func (p *Projector) DetachVB(vb int) {
	p.hub.DetachVB(vb)
}

// FeedStats describes the projector's feeds.
func (p *Projector) FeedStats() []feed.Stat {
	return p.hub.Stats()
}

// backfillIndex performs an index's initial build over this
// projector's vBuckets: a dedicated DCP stream from seqno 0 per
// vBucket, consumed up to the high seqno observed at start. Newer
// mutations arrive via the steady-state stream; the indexer's
// per-document seqno guard makes the overlap safe.
func (p *Projector) backfillIndex(st *indexState) {
	for vb, producer := range p.hub.Producers() {
		target := producer.HighSeqno()
		if target == 0 {
			continue
		}
		s, err := producer.ResumeStream("gsi-build:"+st.cd.Name, 0, 0)
		if err != nil {
			continue
		}
		for m := range s.C() {
			routeTo(st, vb, m)
			if m.Seqno >= target {
				break
			}
		}
		s.Close()
	}
}

// Close stops the projector's feeds.
func (p *Projector) Close() {
	p.hub.Close()
}

// FeedStats describes the feeds of one keyspace's projector.
func (s *Service) FeedStats(keyspace string) []feed.Stat {
	s.mu.Lock()
	p := s.projectors[keyspace]
	s.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.FeedStats()
}

// Close shuts down every projector feed and every indexer.
func (s *Service) Close() {
	s.mu.Lock()
	states := s.indexes
	s.indexes = make(map[string]*indexState)
	projectors := s.projectors
	s.projectors = make(map[string]*Projector)
	s.mu.Unlock()
	for _, p := range projectors {
		p.Close()
	}
	for _, st := range states {
		for _, p := range st.parts {
			p.Close()
		}
	}
}

// Partitions exposes the partition indexers (tests, snapshots).
func (s *Service) Partitions(keyspace, name string) ([]*Indexer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.indexes[indexKey(keyspace, name)]
	if !ok {
		return nil, ErrNoSuchIndex
	}
	return append([]*Indexer(nil), st.parts...), nil
}
