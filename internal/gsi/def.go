// Package gsi implements Global Secondary Indexes (paper §3.3.2,
// §4.3.4, Figure 9). The division of labour follows the paper:
//
//   - The Projector lives on the data service node where mutations
//     originate; it consumes the DCP feed and maps each mutation to the
//     set of Key Versions needed for secondary index maintenance.
//   - The Router, co-located with the projector, sends Key Versions to
//     the indexer(s) responsible, using the index partitioning topology.
//   - The Indexer, on an index service node, applies the changes to the
//     on-disk (or, for the 4.5 memory-optimized mode of §6.1.1, fully
//     in-memory) index structure and serves scans.
//
// Partial ("selective", §3.3.4) indexes, composite keys, array indexes
// (§6.1.2), primary indexes (§3.3.3), and request_plus consistency
// (§3.2.3) are all supported.
package gsi

import (
	"errors"
	"fmt"
	"hash/crc32"

	"couchgo/internal/n1ql"
	"couchgo/internal/value"
)

// StorageMode selects the indexer's storage engine.
type StorageMode int

const (
	// Standard persists every maintenance batch to an append-only disk
	// log (the forestdb-backed default of version 4.1).
	Standard StorageMode = iota
	// MemoryOptimized keeps the whole index in memory with periodic
	// disk snapshots for recoverability (version 4.5, §6.1.1): "These
	// new indexes will reside completely in memory, dramatically
	// reducing dependence on disk."
	MemoryOptimized
)

func (m StorageMode) String() string {
	if m == MemoryOptimized {
		return "memory_optimized"
	}
	return "standard"
}

// Errors returned by the GSI service.
var (
	ErrNoSuchIndex = errors.New("gsi: no such index")
	ErrIndexExists = errors.New("gsi: index already exists")
	ErrBadDef      = errors.New("gsi: invalid index definition")
)

// Def declares an index.
type Def struct {
	Name     string
	Keyspace string
	// SecExprs are the index key expressions (canonical or raw source;
	// they are formalized against the keyspace on compile). Empty for a
	// primary index.
	SecExprs []string
	// WhereExpr is the partial-index predicate, "" for none.
	WhereExpr string
	IsPrimary bool
	// NumPartitions > 1 range/hash-partitions the index across
	// indexers. Defaults to 1.
	NumPartitions int
	Mode          StorageMode
	// Deferred indexes are created but not built until BuildIndex.
	Deferred bool
}

// compiledDef carries the parsed, formalized expressions.
type compiledDef struct {
	Def
	secKeys []n1ql.Expr
	where   n1ql.Expr
	// arrayKey, when non-nil, is the ArrayComprehension in position 0
	// of the key list: the index is an array index emitting one entry
	// per element (§6.1.2).
	arrayKey *n1ql.ArrayComprehension
	// canonical strings for planner matching.
	SecCanonical   []string
	WhereCanonical string
}

func compileDef(def Def) (*compiledDef, error) {
	if def.NumPartitions <= 0 {
		def.NumPartitions = 1
	}
	cd := &compiledDef{Def: def}
	if def.IsPrimary {
		if len(def.SecExprs) > 0 {
			return nil, fmt.Errorf("%w: primary index cannot have key expressions", ErrBadDef)
		}
		// The primary index's single key is the document ID.
		cd.SecCanonical = []string{"meta().id"}
	}
	for i, src := range def.SecExprs {
		e, err := n1ql.ParseExpr(src)
		if err != nil {
			return nil, fmt.Errorf("%w: key %d: %v", ErrBadDef, i, err)
		}
		f := n1ql.Formalize(e, def.Keyspace)
		if i == 0 {
			if ac, ok := f.(*n1ql.ArrayComprehension); ok {
				cd.arrayKey = ac
			}
		} else if _, ok := f.(*n1ql.ArrayComprehension); ok {
			return nil, fmt.Errorf("%w: array key must be the leading index key", ErrBadDef)
		}
		cd.secKeys = append(cd.secKeys, f)
		cd.SecCanonical = append(cd.SecCanonical, f.String())
	}
	if def.WhereExpr != "" {
		e, err := n1ql.ParseExpr(def.WhereExpr)
		if err != nil {
			return nil, fmt.Errorf("%w: where: %v", ErrBadDef, err)
		}
		f := n1ql.Formalize(e, def.Keyspace)
		cd.where = f
		cd.WhereCanonical = f.String()
	}
	if !def.IsPrimary && len(cd.secKeys) == 0 {
		return nil, fmt.Errorf("%w: no key expressions", ErrBadDef)
	}
	return cd, nil
}

// entries computes the index entries for one document: a slice of
// composite secondary keys. nil means the document does not qualify
// (filtered by the partial-index predicate, or its key is MISSING).
func (cd *compiledDef) entries(docID string, doc any, cas uint64) ([][]any, error) {
	ctx := n1ql.NewContext("self", doc, n1ql.Meta{ID: docID, CAS: cas})
	if cd.where != nil {
		ok, err := n1ql.Eval(cd.where, ctx)
		if err != nil {
			return nil, err
		}
		if ok != true {
			return nil, nil
		}
	}
	if cd.IsPrimary {
		return [][]any{{docID}}, nil
	}
	if cd.arrayKey != nil {
		return cd.arrayEntries(ctx)
	}
	key := make([]any, len(cd.secKeys))
	for i, e := range cd.secKeys {
		v, err := n1ql.Eval(e, ctx)
		if err != nil {
			return nil, err
		}
		if i == 0 && value.IsMissing(v) {
			// A document whose leading key is MISSING is not indexed —
			// the reason IS MISSING predicates cannot use an index.
			return nil, nil
		}
		key[i] = v
	}
	return [][]any{key}, nil
}

// arrayEntries expands the leading array comprehension into one entry
// per (distinct) element, each carrying the trailing key values.
func (cd *compiledDef) arrayEntries(ctx *n1ql.Context) ([][]any, error) {
	elems, err := n1ql.Eval(cd.arrayKey, ctx)
	if err != nil {
		return nil, err
	}
	arr, ok := elems.([]any)
	if !ok {
		return nil, nil
	}
	trailing := make([]any, len(cd.secKeys)-1)
	for i, e := range cd.secKeys[1:] {
		v, err := n1ql.Eval(e, ctx)
		if err != nil {
			return nil, err
		}
		trailing[i] = v
	}
	var out [][]any
	seen := map[string]bool{}
	for _, el := range arr {
		if value.IsMissing(el) {
			continue
		}
		ek := string(value.EncodeKey(el))
		if seen[ek] {
			continue
		}
		seen[ek] = true
		entry := make([]any, 0, len(cd.secKeys))
		entry = append(entry, el)
		entry = append(entry, trailing...)
		out = append(out, entry)
	}
	return out, nil
}

// Partition assigns a document to one of the index's partitions. A
// hash on the document ID keeps all entries for one document together,
// so "an insert message may be sent to one indexer with a delete
// message being sent to another" only when the partition key changes —
// here the doc ID is the partition key, so a doc's entries never split.
func (cd *compiledDef) Partition(docID string) int {
	if cd.NumPartitions <= 1 {
		return 0
	}
	return int(crc32.ChecksumIEEE([]byte(docID)) % uint32(cd.NumPartitions))
}
