package gsi

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"couchgo/internal/storage"
	"couchgo/internal/vbucket"
)

// harness wires real vBuckets through a projector into a Service.
type harness struct {
	svc  *Service
	proj *Projector
	vbs  []*vbucket.VBucket
}

func newHarness(t *testing.T, nvb int) *harness {
	t.Helper()
	dir := t.TempDir()
	h := &harness{svc: NewService(dir)}
	h.proj = NewProjector(h.svc, "Profile")
	for i := 0; i < nvb; i++ {
		f, err := storage.Open(filepath.Join(dir, fmt.Sprintf("vb%d.couch", i)), false)
		if err != nil {
			t.Fatal(err)
		}
		vb := vbucket.New(i, f, vbucket.Active, vbucket.Config{})
		h.vbs = append(h.vbs, vb)
		if err := h.proj.AttachVB(i, vb.Producer()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { vb.Close(); f.Close() })
	}
	t.Cleanup(func() { h.proj.Close(); h.svc.Close() })
	return h
}

func (h *harness) put(t *testing.T, vb int, key, doc string) {
	t.Helper()
	if _, err := h.vbs[vb].Set(context.Background(), key, []byte(doc), 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

// fresh returns request_plus scan options covering all current writes.
func (h *harness) fresh() map[int]uint64 {
	out := map[int]uint64{}
	for _, vb := range h.vbs {
		out[vb.ID] = vb.HighSeqno()
	}
	return out
}

func (h *harness) scanFresh(t *testing.T, name string, opts ScanOptions) []ScanItem {
	t.Helper()
	opts.WaitSeqnos = h.fresh()
	items, err := h.svc.Scan(context.Background(), "Profile", name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return items
}

func TestCreateIndexAndScan(t *testing.T) {
	h := newHarness(t, 2)
	if err := h.svc.CreateIndex(Def{Name: "email", Keyspace: "Profile", SecExprs: []string{"email"}}); err != nil {
		t.Fatal(err)
	}
	h.put(t, 0, "u1", `{"email": "a@x.com", "age": 30}`)
	h.put(t, 1, "u2", `{"email": "c@x.com", "age": 25}`)
	h.put(t, 0, "u3", `{"email": "b@x.com", "age": 35}`)
	h.put(t, 1, "u4", `{"age": 99}`) // no email -> not indexed

	items := h.scanFresh(t, "email", ScanOptions{})
	if len(items) != 3 {
		t.Fatalf("items: %+v", items)
	}
	// Sorted by secondary key across vBuckets.
	if items[0].DocID != "u1" || items[1].DocID != "u3" || items[2].DocID != "u2" {
		t.Errorf("order: %+v", items)
	}
	// The index returns doc IDs plus indexed values ("an index simply
	// returns the document ID for each attribute match").
	if items[0].SecKey[0] != "a@x.com" {
		t.Errorf("seckey: %+v", items[0])
	}
}

func TestIndexMaintenanceOnUpdateDelete(t *testing.T) {
	h := newHarness(t, 1)
	h.svc.CreateIndex(Def{Name: "email", Keyspace: "Profile", SecExprs: []string{"email"}})
	h.put(t, 0, "u1", `{"email": "old@x.com"}`)
	items := h.scanFresh(t, "email", ScanOptions{})
	if len(items) != 1 || items[0].SecKey[0] != "old@x.com" {
		t.Fatalf("initial: %+v", items)
	}
	h.put(t, 0, "u1", `{"email": "new@x.com"}`)
	items = h.scanFresh(t, "email", ScanOptions{})
	if len(items) != 1 || items[0].SecKey[0] != "new@x.com" {
		t.Fatalf("after update: %+v", items)
	}
	h.vbs[0].Delete(context.Background(), "u1", 0, 0)
	items = h.scanFresh(t, "email", ScanOptions{})
	if len(items) != 0 {
		t.Fatalf("after delete: %+v", items)
	}
}

func TestCreateIndexOnExistingDataBackfills(t *testing.T) {
	h := newHarness(t, 2)
	for i := 0; i < 40; i++ {
		h.put(t, i%2, fmt.Sprintf("u%02d", i), fmt.Sprintf(`{"email": "e%02d@x.com"}`, i))
	}
	if err := h.svc.CreateIndex(Def{Name: "email", Keyspace: "Profile", SecExprs: []string{"email"}}); err != nil {
		t.Fatal(err)
	}
	items := h.scanFresh(t, "email", ScanOptions{})
	if len(items) != 40 {
		t.Fatalf("backfilled %d items, want 40", len(items))
	}
}

func TestRangeScans(t *testing.T) {
	h := newHarness(t, 1)
	h.svc.CreateIndex(Def{Name: "age", Keyspace: "Profile", SecExprs: []string{"age"}})
	for i := 0; i < 10; i++ {
		h.put(t, 0, fmt.Sprintf("u%d", i), fmt.Sprintf(`{"age": %d}`, 20+i))
	}
	// age >= 25, < 28
	items := h.scanFresh(t, "age", ScanOptions{
		Low: []any{25.0}, LowIncl: true, High: []any{28.0},
	})
	if len(items) != 3 || items[0].SecKey[0] != 25.0 || items[2].SecKey[0] != 27.0 {
		t.Fatalf("range: %+v", items)
	}
	// Exclusive low / inclusive high.
	items = h.scanFresh(t, "age", ScanOptions{
		Low: []any{25.0}, High: []any{28.0}, HighIncl: true,
	})
	if len(items) != 3 || items[0].SecKey[0] != 26.0 || items[2].SecKey[0] != 28.0 {
		t.Fatalf("excl/incl: %+v", items)
	}
	// Equality.
	items = h.scanFresh(t, "age", ScanOptions{EqualKey: []any{23.0}, HasEqual: true})
	if len(items) != 1 || items[0].DocID != "u3" {
		t.Fatalf("equality: %+v", items)
	}
	// Limit + reverse.
	items = h.scanFresh(t, "age", ScanOptions{Limit: 2, Reverse: true})
	if len(items) != 2 || items[0].SecKey[0] != 29.0 {
		t.Fatalf("reverse limit: %+v", items)
	}
	// Count.
	n, err := h.svc.Count("Profile", "age", ScanOptions{Low: []any{25.0}, LowIncl: true})
	if err != nil || n != 5 {
		t.Fatalf("count: %d %v", n, err)
	}
}

func TestCompositeIndex(t *testing.T) {
	h := newHarness(t, 1)
	h.svc.CreateIndex(Def{Name: "cityAge", Keyspace: "Profile", SecExprs: []string{"city", "age"}})
	h.put(t, 0, "u1", `{"city": "SF", "age": 30}`)
	h.put(t, 0, "u2", `{"city": "SF", "age": 25}`)
	h.put(t, 0, "u3", `{"city": "NY", "age": 40}`)
	// Prefix scan: city = SF matches both ages, ordered by age.
	items := h.scanFresh(t, "cityAge", ScanOptions{
		Low: []any{"SF"}, LowIncl: true, High: []any{"SF"}, HighIncl: true,
	})
	if len(items) != 2 || items[0].DocID != "u2" || items[1].DocID != "u1" {
		t.Fatalf("prefix scan: %+v", items)
	}
	// Full composite equality.
	items = h.scanFresh(t, "cityAge", ScanOptions{EqualKey: []any{"SF", 25.0}, HasEqual: true})
	if len(items) != 1 || items[0].DocID != "u2" {
		t.Fatalf("composite equality: %+v", items)
	}
}

func TestPartialIndex(t *testing.T) {
	// The §3.3.4 example: WHERE age > 21.
	h := newHarness(t, 1)
	if err := h.svc.CreateIndex(Def{
		Name: "over21", Keyspace: "Profile", SecExprs: []string{"age"}, WhereExpr: "age > 21",
	}); err != nil {
		t.Fatal(err)
	}
	h.put(t, 0, "kid", `{"age": 15}`)
	h.put(t, 0, "adult", `{"age": 30}`)
	items := h.scanFresh(t, "over21", ScanOptions{})
	if len(items) != 1 || items[0].DocID != "adult" {
		t.Fatalf("partial index: %+v", items)
	}
	// A doc aging out of the predicate leaves the index.
	h.put(t, 0, "adult", `{"age": 10}`)
	items = h.scanFresh(t, "over21", ScanOptions{})
	if len(items) != 0 {
		t.Fatalf("after predicate change: %+v", items)
	}
}

func TestPrimaryIndex(t *testing.T) {
	h := newHarness(t, 2)
	h.svc.CreateIndex(Def{Name: "#primary", Keyspace: "Profile", IsPrimary: true})
	for i := 0; i < 6; i++ {
		h.put(t, i%2, fmt.Sprintf("user%d", i), `{"x": 1}`)
	}
	items := h.scanFresh(t, "#primary", ScanOptions{})
	if len(items) != 6 || items[0].DocID != "user0" {
		t.Fatalf("primary scan: %+v", items)
	}
	// Range on document IDs (workload E's meta().id >= $1 pattern).
	items = h.scanFresh(t, "#primary", ScanOptions{Low: []any{"user3"}, LowIncl: true, Limit: 2})
	if len(items) != 2 || items[0].DocID != "user3" || items[1].DocID != "user4" {
		t.Fatalf("primary range: %+v", items)
	}
}

func TestArrayIndex(t *testing.T) {
	// §6.1.2: index on array-valued field, one entry per element.
	h := newHarness(t, 1)
	if err := h.svc.CreateIndex(Def{
		Name: "byCategory", Keyspace: "Profile",
		SecExprs: []string{"ARRAY c FOR c IN categories END"},
	}); err != nil {
		t.Fatal(err)
	}
	h.put(t, 0, "p1", `{"categories": ["db", "nosql", "db"]}`) // dup deduped
	h.put(t, 0, "p2", `{"categories": ["cloud", "db"]}`)
	h.put(t, 0, "p3", `{"categories": []}`)

	items := h.scanFresh(t, "byCategory", ScanOptions{EqualKey: []any{"db"}, HasEqual: true})
	if len(items) != 2 {
		t.Fatalf("array equality: %+v", items)
	}
	items = h.scanFresh(t, "byCategory", ScanOptions{})
	if len(items) != 4 { // p1: db,nosql; p2: cloud,db
		t.Fatalf("array entries: %+v", items)
	}
	// Element removed from array -> entry removed.
	h.put(t, 0, "p2", `{"categories": ["cloud"]}`)
	items = h.scanFresh(t, "byCategory", ScanOptions{EqualKey: []any{"db"}, HasEqual: true})
	if len(items) != 1 || items[0].DocID != "p1" {
		t.Fatalf("after array shrink: %+v", items)
	}
	meta, _ := h.svc.Lookup("Profile", "byCategory")
	if !meta.IsArrayIndex {
		t.Error("IsArrayIndex flag")
	}
}

func TestPartitionedIndex(t *testing.T) {
	h := newHarness(t, 2)
	if err := h.svc.CreateIndex(Def{
		Name: "age", Keyspace: "Profile", SecExprs: []string{"age"}, NumPartitions: 4,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		h.put(t, i%2, fmt.Sprintf("u%02d", i), fmt.Sprintf(`{"age": %d}`, i))
	}
	items := h.scanFresh(t, "age", ScanOptions{})
	if len(items) != 50 {
		t.Fatalf("partitioned scan: %d items", len(items))
	}
	// Merged in collation order despite partitioning.
	for i := 1; i < len(items); i++ {
		if items[i-1].SecKey[0].(float64) > items[i].SecKey[0].(float64) {
			t.Fatalf("merge order broken at %d", i)
		}
	}
	// Each doc's entries live in exactly one partition.
	parts, _ := h.svc.Partitions("Profile", "age")
	total := 0
	for _, p := range parts {
		total += p.Stats().Entries
	}
	if total != 50 {
		t.Fatalf("partition entries sum to %d", total)
	}
	// Limited partitioned scan.
	items = h.scanFresh(t, "age", ScanOptions{Low: []any{10.0}, LowIncl: true, Limit: 5})
	if len(items) != 5 || items[0].SecKey[0] != 10.0 {
		t.Fatalf("partitioned limit: %+v", items)
	}
}

func TestDeferredBuild(t *testing.T) {
	h := newHarness(t, 1)
	h.put(t, 0, "u1", `{"age": 30}`)
	if err := h.svc.CreateIndex(Def{
		Name: "age", Keyspace: "Profile", SecExprs: []string{"age"}, Deferred: true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.svc.Scan(context.Background(), "Profile", "age", ScanOptions{}); err != ErrNoSuchIndex {
		t.Fatalf("deferred index should not be scannable: %v", err)
	}
	if err := h.svc.BuildIndex("Profile", "age"); err != nil {
		t.Fatal(err)
	}
	items := h.scanFresh(t, "age", ScanOptions{})
	if len(items) != 1 {
		t.Fatalf("after build: %+v", items)
	}
}

func TestRequestPlusWaitsForMutations(t *testing.T) {
	h := newHarness(t, 2)
	h.svc.CreateIndex(Def{Name: "age", Keyspace: "Profile", SecExprs: []string{"age"}})
	// Burst writes + immediate request_plus scans: must always observe.
	for round := 0; round < 10; round++ {
		for i := 0; i < 10; i++ {
			h.put(t, i%2, fmt.Sprintf("r%dd%d", round, i), fmt.Sprintf(`{"age": %d}`, i))
		}
		items := h.scanFresh(t, "age", ScanOptions{})
		want := (round + 1) * 10
		if len(items) != want {
			t.Fatalf("round %d: %d items, want %d", round, len(items), want)
		}
	}
}

func TestMemoryOptimizedModeAndSnapshot(t *testing.T) {
	h := newHarness(t, 1)
	h.svc.CreateIndex(Def{
		Name: "age", Keyspace: "Profile", SecExprs: []string{"age"}, Mode: MemoryOptimized,
	})
	for i := 0; i < 20; i++ {
		h.put(t, 0, fmt.Sprintf("u%02d", i), fmt.Sprintf(`{"age": %d}`, i))
	}
	items := h.scanFresh(t, "age", ScanOptions{})
	if len(items) != 20 {
		t.Fatalf("memopt scan: %d", len(items))
	}
	// Snapshot / restore round trip (§6.1.1 disk-backup recoverability).
	parts, _ := h.svc.Partitions("Profile", "age")
	var buf bytes.Buffer
	if err := parts[0].SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	cd, _ := compileDef(Def{Name: "age2", Keyspace: "Profile", SecExprs: []string{"age"}, Mode: MemoryOptimized})
	restored, err := NewIndexer(cd, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Stats().Entries != 20 {
		t.Fatalf("restored entries: %+v", restored.Stats())
	}
	got, err := restored.Scan(context.Background(), ScanOptions{EqualKey: []any{7.0}, HasEqual: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].DocID != "u07" {
		t.Fatalf("restored scan: %+v", got)
	}
	// Processed vector survives.
	if restored.Processed()[0] == 0 {
		t.Error("processed vector lost in snapshot")
	}
}

func TestIndexDDLErrors(t *testing.T) {
	h := newHarness(t, 1)
	if err := h.svc.CreateIndex(Def{Name: "x", Keyspace: "P"}); err == nil {
		t.Error("no keys should fail")
	}
	if err := h.svc.CreateIndex(Def{Name: "x", Keyspace: "P", SecExprs: []string{"(("}}); err == nil {
		t.Error("bad expr should fail")
	}
	if err := h.svc.CreateIndex(Def{Name: "x", Keyspace: "P", IsPrimary: true, SecExprs: []string{"a"}}); err == nil {
		t.Error("primary with keys should fail")
	}
	if err := h.svc.CreateIndex(Def{Name: "x", Keyspace: "P", SecExprs: []string{"a", "ARRAY c FOR c IN b END"}}); err == nil {
		t.Error("trailing array key should fail")
	}
	h.svc.CreateIndex(Def{Name: "dup", Keyspace: "P", SecExprs: []string{"a"}})
	if err := h.svc.CreateIndex(Def{Name: "dup", Keyspace: "P", SecExprs: []string{"a"}}); err != ErrIndexExists {
		t.Errorf("duplicate: %v", err)
	}
	if err := h.svc.DropIndex("P", "nope"); err != ErrNoSuchIndex {
		t.Errorf("drop unknown: %v", err)
	}
	if err := h.svc.BuildIndex("P", "nope"); err != ErrNoSuchIndex {
		t.Errorf("build unknown: %v", err)
	}
	if _, err := h.svc.Scan(context.Background(), "P", "nope", ScanOptions{}); err != ErrNoSuchIndex {
		t.Errorf("scan unknown: %v", err)
	}
	if err := h.svc.DropIndex("P", "dup"); err != nil {
		t.Fatal(err)
	}
}

func TestListIndexesCatalog(t *testing.T) {
	h := newHarness(t, 1)
	h.svc.CreateIndex(Def{Name: "b", Keyspace: "Profile", SecExprs: []string{"beta"}})
	h.svc.CreateIndex(Def{Name: "a", Keyspace: "Profile", SecExprs: []string{"alpha"}, WhereExpr: "alpha > 0"})
	h.svc.CreateIndex(Def{Name: "other", Keyspace: "Other", SecExprs: []string{"x"}})
	metas := h.svc.ListIndexes("Profile")
	if len(metas) != 2 || metas[0].Name != "a" || metas[1].Name != "b" {
		t.Fatalf("catalog: %+v", metas)
	}
	if metas[0].SecCanonical[0] != "self.alpha" || metas[0].WhereCanonical != "(self.alpha > 0)" {
		t.Errorf("canonical forms: %+v", metas[0])
	}
}

func TestDetachVBStopsProjection(t *testing.T) {
	h := newHarness(t, 2)
	h.svc.CreateIndex(Def{Name: "age", Keyspace: "Profile", SecExprs: []string{"age"}})
	h.put(t, 0, "a", `{"age": 1}`)
	h.put(t, 1, "b", `{"age": 2}`)
	h.scanFresh(t, "age", ScanOptions{})
	h.proj.DetachVB(1)
	// Further writes to vb1 are not projected.
	h.vbs[1].Set(context.Background(), "c", []byte(`{"age": 3}`), 0, 0, 0, 0)
	items, _ := h.svc.Scan(context.Background(), "Profile", "age", ScanOptions{})
	for _, it := range items {
		if it.DocID == "c" {
			t.Fatal("detached vb still projecting")
		}
	}
}
