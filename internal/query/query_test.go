package query

import (
	"context"
	"strings"
	"testing"

	"couchgo/internal/executor"
	"couchgo/internal/value"
)

// fixture: a profile store plus orders, as in the paper's examples.
func fixture(t *testing.T) (*Engine, *memStore) {
	t.Helper()
	s := newMemStore("Profile", "orders", "product", "profiles_orders")
	e := NewEngine(s)
	mustExec(t, e, "CREATE PRIMARY INDEX ON Profile")
	mustExec(t, e, "CREATE PRIMARY INDEX ON orders")
	mustExec(t, e, "CREATE PRIMARY INDEX ON product")
	mustExec(t, e, "CREATE PRIMARY INDEX ON profiles_orders")

	s.put("Profile", "borkar123", `{"name": "Dipti", "email": "dipti@couchbase.com", "age": 30, "city": "SF", "categories": ["db", "nosql"]}`)
	s.put("Profile", "mayuram456", `{"name": "Ravi", "email": "ravi@couchbase.com", "age": 45, "city": "SF", "categories": ["cloud"]}`)
	s.put("Profile", "sangudi789", `{"name": "Gerald", "email": "gerald@couchbase.com", "age": 40, "city": "NY", "categories": ["db", "query"]}`)
	s.put("Profile", "carey000", `{"name": "Mike", "email": "mike@couchbase.com", "age": 60, "city": "Irvine"}`)

	s.put("orders", "o1", `{"user": "borkar123", "total": 100, "items": [{"sku": "a", "qty": 2}, {"sku": "b", "qty": 1}]}`)
	s.put("orders", "o2", `{"user": "borkar123", "total": 50, "items": [{"sku": "c", "qty": 5}]}`)
	s.put("orders", "o3", `{"user": "mayuram456", "total": 75, "items": []}`)

	s.put("profiles_orders", "po1", `{"doc_type": "user_profile", "personal_details": {"name": "D"}, "shipped_order_history": [{"order_id": "po-ord-1"}, {"order_id": "po-ord-2"}]}`)
	s.put("profiles_orders", "po-ord-1", `{"doc_type": "order", "total": 10}`)
	s.put("profiles_orders", "po-ord-2", `{"doc_type": "order", "total": 20}`)

	s.put("product", "p1", `{"name": "widget", "categories": ["tools", "home"]}`)
	s.put("product", "p2", `{"name": "gadget", "categories": ["tools", "tech"]}`)
	return e, s
}

func mustExec(t *testing.T, e *Engine, stmt string) *Result {
	t.Helper()
	res, err := e.Execute(stmt, executor.Options{})
	if err != nil {
		t.Fatalf("Execute(%q): %v", stmt, err)
	}
	return res
}

func execParams(t *testing.T, e *Engine, stmt string, params map[string]any) *Result {
	t.Helper()
	res, err := e.Execute(stmt, executor.Options{Params: params})
	if err != nil {
		t.Fatalf("Execute(%q): %v", stmt, err)
	}
	return res
}

func field(row any, name string) any { return value.Field(row, name) }

func TestUseKeysLookup(t *testing.T) {
	e, _ := fixture(t)
	res := mustExec(t, e, `SELECT name, email FROM Profile USE KEYS "borkar123"`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	if field(res.Rows[0], "name") != "Dipti" || field(res.Rows[0], "email") != "dipti@couchbase.com" {
		t.Errorf("row: %+v", res.Rows[0])
	}
	// Multi-key.
	res = mustExec(t, e, `SELECT name FROM Profile USE KEYS ["borkar123", "carey000", "ghost"]`)
	if len(res.Rows) != 2 {
		t.Errorf("multi-key rows: %+v", res.Rows)
	}
}

func TestSelectStarWrapsAlias(t *testing.T) {
	e, _ := fixture(t)
	res := mustExec(t, e, `SELECT * FROM Profile USE KEYS "carey000"`)
	doc := field(res.Rows[0], "Profile")
	if field(doc, "name") != "Mike" {
		t.Errorf("star row: %+v", res.Rows[0])
	}
	// alias.* splices fields.
	res = mustExec(t, e, `SELECT p.* FROM Profile p USE KEYS "carey000"`)
	if field(res.Rows[0], "name") != "Mike" {
		t.Errorf("alias star: %+v", res.Rows[0])
	}
}

func TestWhereWithIndexAndFilter(t *testing.T) {
	e, _ := fixture(t)
	mustExec(t, e, "CREATE INDEX byAge ON Profile(age)")
	res := mustExec(t, e, `SELECT name FROM Profile WHERE age > 35 AND city = "SF" ORDER BY name`)
	if len(res.Rows) != 1 || field(res.Rows[0], "name") != "Ravi" {
		t.Fatalf("rows: %+v", res.Rows)
	}
}

func TestOrderLimitOffset(t *testing.T) {
	e, _ := fixture(t)
	res := mustExec(t, e, "SELECT name FROM Profile ORDER BY age DESC LIMIT 2 OFFSET 1")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	if field(res.Rows[0], "name") != "Ravi" || field(res.Rows[1], "name") != "Gerald" {
		t.Errorf("ordered rows: %+v", res.Rows)
	}
}

func TestParameters(t *testing.T) {
	e, _ := fixture(t)
	res := execParams(t, e, "SELECT name FROM Profile WHERE age >= $min ORDER BY age", map[string]any{"min": 40.0})
	if len(res.Rows) != 3 || field(res.Rows[0], "name") != "Gerald" {
		t.Fatalf("rows: %+v", res.Rows)
	}
	// Positional.
	res = execParams(t, e, "SELECT name FROM Profile WHERE name = $1", map[string]any{"1": "Mike"})
	if len(res.Rows) != 1 {
		t.Fatalf("positional: %+v", res.Rows)
	}
	// Missing parameter errors.
	if _, err := e.Execute("SELECT name FROM Profile WHERE age > $missing", executor.Options{}); err == nil {
		t.Error("missing param should error")
	}
}

func TestGroupByHavingAggregates(t *testing.T) {
	e, _ := fixture(t)
	res := mustExec(t, e, `SELECT city, COUNT(*) AS n, AVG(age) AS avg_age FROM Profile GROUP BY city HAVING COUNT(*) >= 1 ORDER BY city`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups: %+v", res.Rows)
	}
	// Irvine, NY, SF in order.
	sf := res.Rows[2]
	if field(sf, "city") != "SF" || field(sf, "n") != 2.0 || field(sf, "avg_age") != 37.5 {
		t.Errorf("SF group: %+v", sf)
	}
	// HAVING filters.
	res = mustExec(t, e, `SELECT city FROM Profile GROUP BY city HAVING COUNT(*) > 1`)
	if len(res.Rows) != 1 || field(res.Rows[0], "city") != "SF" {
		t.Errorf("having: %+v", res.Rows)
	}
	// Global aggregate without GROUP BY.
	res = mustExec(t, e, "SELECT COUNT(*) AS total, MAX(age) AS oldest FROM Profile")
	if field(res.Rows[0], "total") != 4.0 || field(res.Rows[0], "oldest") != 60.0 {
		t.Errorf("global agg: %+v", res.Rows)
	}
	// Aggregate over empty set still returns one row.
	res = mustExec(t, e, `SELECT COUNT(*) AS n FROM Profile WHERE age > 1000`)
	if len(res.Rows) != 1 || field(res.Rows[0], "n") != 0.0 {
		t.Errorf("empty agg: %+v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	e, _ := fixture(t)
	res := mustExec(t, e, "SELECT DISTINCT city FROM Profile")
	if len(res.Rows) != 3 {
		t.Errorf("distinct: %+v", res.Rows)
	}
}

func TestPaperJoinExample(t *testing.T) {
	e, _ := fixture(t)
	// Orders joined to their user profile by key.
	res := mustExec(t, e, `
		SELECT o.total, p.name
		FROM orders o INNER JOIN Profile p ON KEYS o.user
		ORDER BY o.total`)
	if len(res.Rows) != 3 {
		t.Fatalf("join rows: %+v", res.Rows)
	}
	if field(res.Rows[0], "total") != 50.0 || field(res.Rows[0], "name") != "Dipti" {
		t.Errorf("join row: %+v", res.Rows[0])
	}
	// LEFT OUTER keeps unmatched outer rows.
	res = mustExec(t, e, `
		SELECT o.total, p.name FROM orders o LEFT JOIN Profile p ON KEYS o.nonexistent ORDER BY o.total`)
	if len(res.Rows) != 3 {
		t.Fatalf("left join rows: %+v", res.Rows)
	}
	if _, hasName := res.Rows[0].(map[string]any)["name"]; hasName {
		t.Error("unmatched left join should omit missing name")
	}
}

func TestPaperNestExample(t *testing.T) {
	e, _ := fixture(t)
	// §3.2.3's NEST: orders nested into the user profile document.
	res := mustExec(t, e, `
		SELECT PO.personal_details, orders
		FROM profiles_orders PO
		USE KEYS 'po1'
		NEST profiles_orders AS orders
		ON KEYS ARRAY s.order_id FOR s IN PO.shipped_order_history END`)
	if len(res.Rows) != 1 {
		t.Fatalf("nest rows: %+v", res.Rows)
	}
	orders := field(res.Rows[0], "orders").([]any)
	if len(orders) != 2 {
		t.Fatalf("nested orders: %+v", orders)
	}
	if field(orders[0], "total") != 10.0 {
		t.Errorf("nested order: %+v", orders[0])
	}
}

func TestPaperUnnestExample(t *testing.T) {
	e, _ := fixture(t)
	// §3.2.3's UNNEST: distinct categories in use.
	res := mustExec(t, e, `SELECT DISTINCT (categories) FROM product UNNEST product.categories AS categories ORDER BY categories`)
	var got []string
	for _, r := range res.Rows {
		got = append(got, field(r, "categories").(string))
	}
	want := []string{"home", "tech", "tools"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("categories: %v", got)
	}
	// Unnest multiplies rows.
	res = mustExec(t, e, `SELECT o.total, item.sku FROM orders o UNNEST o.items AS item ORDER BY item.sku`)
	if len(res.Rows) != 3 {
		t.Fatalf("unnest rows: %+v", res.Rows)
	}
}

func TestInsertUpsertDelete(t *testing.T) {
	e, s := fixture(t)
	res := mustExec(t, e, `INSERT INTO Profile (KEY, VALUE) VALUES ("new1", {"name": "New", "age": 1})`)
	if res.MutationCount != 1 {
		t.Fatalf("insert count: %d", res.MutationCount)
	}
	if _, ok := s.docs["Profile"]["new1"]; !ok {
		t.Fatal("doc not inserted")
	}
	// Duplicate INSERT fails; UPSERT succeeds.
	if _, err := e.Execute(`INSERT INTO Profile (KEY, VALUE) VALUES ("new1", {"x": 1})`, executor.Options{}); err == nil {
		t.Error("duplicate insert should fail")
	}
	mustExec(t, e, `UPSERT INTO Profile (KEY, VALUE) VALUES ("new1", {"name": "New2"})`)
	doc, _, _ := s.Fetch(context.Background(), "Profile", "new1")
	if field(doc, "name") != "New2" {
		t.Errorf("after upsert: %+v", doc)
	}
	// RETURNING.
	res = mustExec(t, e, `INSERT INTO Profile (KEY, VALUE) VALUES ("new2", {"name": "R"}) RETURNING meta().id, name`)
	if len(res.Rows) != 1 || field(res.Rows[0], "id") != "new2" || field(res.Rows[0], "name") != "R" {
		t.Errorf("returning: %+v", res.Rows)
	}
	// DELETE with WHERE.
	res = mustExec(t, e, `DELETE FROM Profile WHERE name = "New2" RETURNING name`)
	if res.MutationCount != 1 || len(res.Rows) != 1 {
		t.Errorf("delete: %+v", res)
	}
	if _, ok := s.docs["Profile"]["new1"]; ok {
		t.Error("doc not deleted")
	}
}

func TestUpdateSetUnset(t *testing.T) {
	e, s := fixture(t)
	res := mustExec(t, e, `UPDATE Profile USE KEYS "carey000" SET age = 61, extra.note = "hi" UNSET email RETURNING age`)
	if res.MutationCount != 1 || field(res.Rows[0], "age") != 61.0 {
		t.Fatalf("update: %+v", res)
	}
	doc, _, _ := s.Fetch(context.Background(), "Profile", "carey000")
	if field(doc, "age") != 61.0 {
		t.Errorf("age: %v", field(doc, "age"))
	}
	if !value.IsMissing(field(doc, "email")) {
		t.Error("email not unset")
	}
	if value.MustParsePath("extra.note").Eval(doc) != "hi" {
		t.Error("nested set failed")
	}
	// Update by WHERE with LIMIT.
	res = mustExec(t, e, `UPDATE Profile SET flagged = TRUE WHERE city = "SF" LIMIT 1`)
	if res.MutationCount != 1 {
		t.Errorf("limited update count: %d", res.MutationCount)
	}
}

func TestExplainOutput(t *testing.T) {
	e, _ := fixture(t)
	mustExec(t, e, "CREATE INDEX byAge ON Profile(age)")
	res := mustExec(t, e, "EXPLAIN SELECT name FROM Profile WHERE age > 30")
	if len(res.Rows) != 1 {
		t.Fatalf("explain rows: %+v", res.Rows)
	}
	plan := res.Rows[0].(map[string]any)
	ops := plan["operators"].([]any)
	first := ops[0].(map[string]any)
	if first["#operator"] != "IndexScan" || first["index"] != "byAge" {
		t.Errorf("explain first op: %+v", first)
	}
	// EXPLAIN DELETE.
	res = mustExec(t, e, `EXPLAIN DELETE FROM Profile WHERE age > 30`)
	if res.Rows[0].(map[string]any)["#mutation"] != "Delete" {
		t.Errorf("explain delete: %+v", res.Rows[0])
	}
}

func TestCoveringQueryEndToEnd(t *testing.T) {
	e, _ := fixture(t)
	mustExec(t, e, "CREATE INDEX emailIdx ON Profile(email)")
	res := mustExec(t, e, `SELECT email FROM Profile WHERE email LIKE "%couchbase.com" ORDER BY email`)
	// LIKE is not sargable here, but email is covered: result correct.
	if len(res.Rows) != 4 {
		t.Fatalf("covered rows: %+v", res.Rows)
	}
	if field(res.Rows[0], "email") != "dipti@couchbase.com" {
		t.Errorf("first: %+v", res.Rows[0])
	}
	// Verify plan really covers.
	pres := mustExec(t, e, `EXPLAIN SELECT email FROM Profile WHERE email LIKE "%couchbase.com"`)
	ops := pres.Rows[0].(map[string]any)["operators"].([]any)
	first := ops[0].(map[string]any)
	if first["covering"] != true {
		t.Errorf("not covering: %+v", first)
	}
	for _, op := range ops {
		if op.(map[string]any)["#operator"] == "Fetch" {
			t.Error("covered plan must not fetch")
		}
	}
}

func TestArrayIndexQuery(t *testing.T) {
	e, _ := fixture(t)
	mustExec(t, e, "CREATE INDEX byCat ON Profile(ARRAY c FOR c IN categories END)")
	res := mustExec(t, e, `SELECT name FROM Profile WHERE ANY c IN categories SATISFIES c = "db" END ORDER BY name`)
	if len(res.Rows) != 2 {
		t.Fatalf("array query: %+v", res.Rows)
	}
	if field(res.Rows[0], "name") != "Dipti" || field(res.Rows[1], "name") != "Gerald" {
		t.Errorf("rows: %+v", res.Rows)
	}
	pres := mustExec(t, e, `EXPLAIN SELECT name FROM Profile WHERE ANY c IN categories SATISFIES c = "db" END`)
	first := pres.Rows[0].(map[string]any)["operators"].([]any)[0].(map[string]any)
	if first["index"] != "byCat" {
		t.Errorf("array index not chosen: %+v", first)
	}
}

func TestPartialIndexQuery(t *testing.T) {
	e, _ := fixture(t)
	mustExec(t, e, "CREATE INDEX over35 ON Profile(age) WHERE age > 35")
	res := mustExec(t, e, "SELECT name FROM Profile WHERE age > 35 ORDER BY age")
	if len(res.Rows) != 3 {
		t.Fatalf("partial rows: %+v", res.Rows)
	}
	pres := mustExec(t, e, "EXPLAIN SELECT name FROM Profile WHERE age > 35")
	first := pres.Rows[0].(map[string]any)["operators"].([]any)[0].(map[string]any)
	if first["index"] != "over35" {
		t.Errorf("partial index not chosen: %+v", first)
	}
}

func TestDeferBuildLifecycle(t *testing.T) {
	e, s := fixture(t)
	mustExec(t, e, `CREATE INDEX lazy ON Profile(age) WITH {"defer_build": true}`)
	// Planner ignores it: the query still works via primary.
	pres := mustExec(t, e, "EXPLAIN SELECT name FROM Profile WHERE age > 0")
	first := pres.Rows[0].(map[string]any)["operators"].([]any)[0].(map[string]any)
	if first["#operator"] != "PrimaryScan" {
		t.Errorf("deferred index used: %+v", first)
	}
	s.BuildIndex("Profile", "lazy")
	pres = mustExec(t, e, "EXPLAIN SELECT name FROM Profile WHERE age > 0")
	first = pres.Rows[0].(map[string]any)["operators"].([]any)[0].(map[string]any)
	if first["index"] != "lazy" {
		t.Errorf("built index unused: %+v", first)
	}
}

func TestDropIndexStatement(t *testing.T) {
	e, _ := fixture(t)
	mustExec(t, e, "CREATE INDEX tmp ON Profile(age)")
	res := mustExec(t, e, "DROP INDEX Profile.tmp")
	if res.Status != "dropped" {
		t.Errorf("status: %s", res.Status)
	}
	if _, err := e.Execute("DROP INDEX Profile.tmp", executor.Options{}); err == nil {
		t.Error("double drop should fail")
	}
}

func TestWorkloadEQueryShape(t *testing.T) {
	e, _ := fixture(t)
	// The appendix query, named params.
	res := execParams(t, e,
		"SELECT meta().id AS id FROM Profile WHERE meta().id >= $1 LIMIT $2",
		map[string]any{"1": "carey000", "2": 2.0})
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %+v", res.Rows)
	}
	if field(res.Rows[0], "id") != "carey000" {
		t.Errorf("first id: %+v", res.Rows[0])
	}
}

func TestFromlessSelect(t *testing.T) {
	e, _ := fixture(t)
	res := mustExec(t, e, "SELECT 1 + 1 AS two, UPPER('x') AS up")
	if field(res.Rows[0], "two") != 2.0 || field(res.Rows[0], "up") != "X" {
		t.Errorf("fromless: %+v", res.Rows)
	}
	// RAW.
	res = mustExec(t, e, "SELECT RAW 6 * 7")
	if res.Rows[0] != 42.0 {
		t.Errorf("raw: %+v", res.Rows)
	}
}

func TestQueryErrors(t *testing.T) {
	e, _ := fixture(t)
	if _, err := e.Execute("", executor.Options{}); err != ErrEmptyStatement {
		t.Errorf("empty: %v", err)
	}
	if _, err := e.Execute("SELEKT 1", executor.Options{}); err == nil {
		t.Error("parse error expected")
	}
	if _, err := e.Execute("SELECT * FROM nosuchks", executor.Options{}); err == nil {
		t.Error("unknown keyspace expected to fail")
	}
	if _, err := e.Execute("SELECT * FROM Profile LIMIT -1", executor.Options{}); err == nil {
		t.Error("negative limit should fail")
	}
	if _, err := e.Execute(`INSERT INTO Profile (KEY, VALUE) VALUES (42, {})`, executor.Options{}); err == nil {
		t.Error("non-string key should fail")
	}
}

func TestRawAndAliases(t *testing.T) {
	e, _ := fixture(t)
	res := mustExec(t, e, `SELECT RAW name FROM Profile USE KEYS "borkar123"`)
	if res.Rows[0] != "Dipti" {
		t.Errorf("raw: %+v", res.Rows)
	}
	// Unaliased expression names derive from the path.
	res = mustExec(t, e, `SELECT p.address FROM Profile p USE KEYS "borkar123"`)
	_ = res // address missing -> omitted entirely
	if len(res.Rows) != 1 || len(res.Rows[0].(map[string]any)) != 0 {
		t.Errorf("missing projection should be omitted: %+v", res.Rows)
	}
}

func TestGeneralJoinsRejectedByQueryService(t *testing.T) {
	e, _ := fixture(t)
	_, err := e.Execute("SELECT * FROM Profile p JOIN orders o ON o.user = p.uid", executor.Options{})
	if err == nil || !strings.Contains(err.Error(), "general") {
		t.Fatalf("general join should be rejected: %v", err)
	}
}
