package query

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"couchgo/internal/executor"
	"couchgo/internal/n1ql"
	"couchgo/internal/planner"
	"couchgo/internal/value"
)

// memStore is a deliberately naive reference implementation of Store:
// documents in a map, "index scans" by evaluating the index expressions
// over every document and sorting. It is an independent oracle for the
// planner/executor — no btree, no gsi, no dcp.
type memStore struct {
	mu      sync.Mutex
	docs    map[string]map[string]any // keyspace -> id -> doc
	indexes map[string][]memIndex     // keyspace -> defs
}

type memIndex struct {
	info  planner.IndexInfo
	keys  []n1ql.Expr // parsed canonical key exprs
	where n1ql.Expr
	array *n1ql.ArrayComprehension
}

func newMemStore(keyspaces ...string) *memStore {
	s := &memStore{docs: map[string]map[string]any{}, indexes: map[string][]memIndex{}}
	for _, ks := range keyspaces {
		s.docs[ks] = map[string]any{}
	}
	return s
}

func (s *memStore) put(ks, id, doc string) {
	v, ok := value.Parse([]byte(doc))
	if !ok {
		panic("bad doc json: " + doc)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[ks][id] = v
}

// --- planner.Catalog ---

func (s *memStore) KeyspaceExists(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.docs[name]
	return ok
}

func (s *memStore) Indexes(keyspace string) []planner.IndexInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []planner.IndexInfo
	for _, ix := range s.indexes[keyspace] {
		out = append(out, ix.info)
	}
	return out
}

// --- DDL ---

func (s *memStore) CreateIndex(ci *n1ql.CreateIndex) error {
	mi := memIndex{
		info: planner.IndexInfo{
			Name:      ci.Name,
			Using:     ci.Using,
			IsPrimary: ci.Primary,
			Built:     true,
		},
	}
	if ci.Primary {
		mi.info.SecCanonical = []string{"meta().id"}
	}
	for i, ke := range ci.Keys {
		f := n1ql.Formalize(ke, ci.Keyspace)
		mi.keys = append(mi.keys, f)
		mi.info.SecCanonical = append(mi.info.SecCanonical, f.String())
		if ac, ok := f.(*n1ql.ArrayComprehension); ok && i == 0 {
			mi.array = ac
			mi.info.IsArray = true
		}
	}
	if ci.Where != nil {
		f := n1ql.Formalize(ci.Where, ci.Keyspace)
		mi.where = f
		mi.info.WhereCanonical = f.String()
	}
	if ci.With != nil {
		if d, ok := ci.With["defer_build"].(bool); ok && d {
			mi.info.Built = false
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ex := range s.indexes[ci.Keyspace] {
		if ex.info.Name == ci.Name {
			return fmt.Errorf("index %s already exists", ci.Name)
		}
	}
	s.indexes[ci.Keyspace] = append(s.indexes[ci.Keyspace], mi)
	return nil
}

func (s *memStore) DropIndex(keyspace, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.indexes[keyspace]
	for i, ix := range list {
		if ix.info.Name == name {
			s.indexes[keyspace] = append(list[:i], list[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("no such index %s", name)
}

func (s *memStore) BuildIndex(keyspace, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.indexes[keyspace] {
		if s.indexes[keyspace][i].info.Name == name {
			s.indexes[keyspace][i].info.Built = true
			return nil
		}
	}
	return fmt.Errorf("no such index %s", name)
}

// --- executor.Datastore ---

func (s *memStore) Fetch(_ context.Context, keyspace, id string) (any, n1ql.Meta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc, ok := s.docs[keyspace][id]
	if !ok {
		return nil, n1ql.Meta{}, executor.ErrNotFound
	}
	return doc, n1ql.Meta{ID: id}, nil
}

func (s *memStore) ConsistencyVector(string) map[int]uint64 { return nil }

func (s *memStore) ScanIndex(_ context.Context, keyspace, index string, _ n1ql.IndexUsing, opts executor.IndexScanOpts) ([]executor.IndexEntry, error) {
	s.mu.Lock()
	var mi *memIndex
	for i := range s.indexes[keyspace] {
		if s.indexes[keyspace][i].info.Name == index {
			mi = &s.indexes[keyspace][i]
			break
		}
	}
	if mi == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("no such index %s", index)
	}
	type pair struct {
		id  string
		sec []any
	}
	var entries []pair
	for id, doc := range s.docs[keyspace] {
		ctx := n1ql.NewContext("self", doc, n1ql.Meta{ID: id})
		if mi.where != nil {
			ok, err := n1ql.Eval(mi.where, ctx)
			if err != nil || ok != true {
				continue
			}
		}
		if mi.info.IsPrimary {
			entries = append(entries, pair{id: id, sec: []any{id}})
			continue
		}
		if mi.array != nil {
			elems, err := n1ql.Eval(mi.array, ctx)
			if err != nil {
				continue
			}
			arr, ok := elems.([]any)
			if !ok {
				continue
			}
			seen := map[string]bool{}
			for _, el := range arr {
				k := string(value.EncodeKey(el))
				if seen[k] {
					continue
				}
				seen[k] = true
				entries = append(entries, pair{id: id, sec: []any{el}})
			}
			continue
		}
		sec := make([]any, len(mi.keys))
		skip := false
		for i, ke := range mi.keys {
			v, err := n1ql.Eval(ke, ctx)
			if err != nil {
				skip = true
				break
			}
			if i == 0 && value.IsMissing(v) {
				skip = true
				break
			}
			sec[i] = v
		}
		if !skip {
			entries = append(entries, pair{id: id, sec: sec})
		}
	}
	s.mu.Unlock()

	// Bound filtering with prefix semantics (compare the first
	// len(bound) positions).
	cmpPrefix := func(sec, bound []any) int {
		n := len(bound)
		if len(sec) < n {
			n = len(sec)
		}
		for i := 0; i < n; i++ {
			if c := value.Compare(sec[i], bound[i]); c != 0 {
				return c
			}
		}
		return 0
	}
	var kept []pair
	for _, e := range entries {
		if opts.HasEqual {
			if value.Compare(e.sec, opts.EqualKey) != 0 {
				continue
			}
		}
		if opts.Low != nil {
			c := cmpPrefix(e.sec, opts.Low)
			if c < 0 || (c == 0 && !opts.LowIncl) {
				continue
			}
		}
		if opts.High != nil {
			c := cmpPrefix(e.sec, opts.High)
			if c > 0 || (c == 0 && !opts.HighIncl) {
				continue
			}
		}
		kept = append(kept, e)
	}
	sort.SliceStable(kept, func(i, j int) bool {
		c := value.Compare(kept[i].sec, kept[j].sec)
		if c == 0 {
			c = strings.Compare(kept[i].id, kept[j].id)
		}
		if opts.Reverse {
			return c > 0
		}
		return c < 0
	})
	if opts.Limit > 0 && len(kept) > opts.Limit {
		kept = kept[:opts.Limit]
	}
	out := make([]executor.IndexEntry, len(kept))
	for i, e := range kept {
		out[i] = executor.IndexEntry{ID: e.id, SecKey: e.sec}
	}
	return out, nil
}

// --- DML ---

func (s *memStore) InsertDoc(_ context.Context, keyspace, id string, doc any, upsert bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.docs[keyspace][id]; exists && !upsert {
		return fmt.Errorf("document %s already exists", id)
	}
	s.docs[keyspace][id] = doc
	return nil
}

func (s *memStore) UpdateDoc(_ context.Context, keyspace, id string, doc any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.docs[keyspace][id]; !exists {
		return executor.ErrNotFound
	}
	s.docs[keyspace][id] = doc
	return nil
}

func (s *memStore) DeleteDoc(_ context.Context, keyspace, id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.docs[keyspace][id]; !exists {
		return executor.ErrNotFound
	}
	delete(s.docs[keyspace], id)
	return nil
}
