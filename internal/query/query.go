// Package query implements the Query Service (paper §4.3.5): it takes
// a N1QL statement, plans it against the catalog, and executes it,
// coordinating with the index and data services. "The receiving node
// will analyze the query, use metadata on its referenced objects to
// choose the best execution plan, and execute the chosen plan."
package query

import (
	"errors"
	"fmt"
	"time"

	"couchgo/internal/executor"
	"couchgo/internal/n1ql"
	"couchgo/internal/planner"
	"couchgo/internal/trace"
)

// Store is everything the query service needs from the rest of the
// system: document fetch + index scans (executor.Datastore), catalog
// metadata (planner.Catalog), and index DDL routing.
type Store interface {
	executor.Datastore
	planner.Catalog
	// CreateIndex routes CREATE INDEX to the GSI service or the view
	// engine depending on USING (§3.3.1 vs §3.3.2).
	CreateIndex(ci *n1ql.CreateIndex) error
	DropIndex(keyspace, name string) error
	BuildIndex(keyspace, name string) error
}

// Result is a statement's outcome.
type Result struct {
	// Rows holds SELECT results (one JSON value each), RETURNING rows,
	// or for EXPLAIN a single plan document.
	Rows []any
	// MutationCount for DML.
	MutationCount int
	// Status is "success" or a DDL acknowledgement.
	Status string
	// Profile holds per-operator timings when the request asked for
	// `profile: timings` (opts.Prof was set).
	Profile []executor.PhaseTiming
}

// ErrEmptyStatement rejects blank input.
var ErrEmptyStatement = errors.New("query: empty statement")

// Engine executes N1QL statements against a Store.
type Engine struct {
	store Store
}

// NewEngine creates a query engine.
func NewEngine(store Store) *Engine { return &Engine{store: store} }

// Execute parses, plans, and runs one statement.
func (e *Engine) Execute(statement string, opts executor.Options) (*Result, error) {
	if statement == "" {
		return nil, ErrEmptyStatement
	}
	t0 := time.Now()
	stmt, err := n1ql.Parse(statement)
	if err != nil {
		return nil, err
	}
	opts.Record("parse", t0, 0)
	return e.ExecuteStmt(stmt, opts)
}

// ExecuteStmt runs an already-parsed statement.
func (e *Engine) ExecuteStmt(stmt n1ql.Statement, opts executor.Options) (*Result, error) {
	res, err := e.executeStmt(stmt, opts)
	if res != nil {
		res.Profile = opts.Prof.Timings()
	}
	return res, err
}

func (e *Engine) executeStmt(stmt n1ql.Statement, opts executor.Options) (*Result, error) {
	switch t := stmt.(type) {
	case *n1ql.Explain:
		return e.explain(t)
	case *n1ql.Select:
		// §3.2.4: general joins are "not supported linguistically in
		// N1QL. Instead, joins are only allowed when one of the two
		// sides involves the primary key (document ID)". The analytics
		// service (internal/analytics) executes the general form.
		for _, j := range t.Joins {
			if j.OnCond != nil {
				return nil, fmt.Errorf("query: general (non-key) joins are not supported by N1QL (§3.2.4); use ON KEYS, or run the query on the analytics service")
			}
		}
		tPlan := time.Now()
		p, err := planner.PlanSelect(t, e.store)
		if err != nil {
			return nil, err
		}
		opts.Record("plan", tPlan, 0)
		if sp := trace.FromContext(opts.Context()); sp != nil {
			sp.Annotate("scan", planner.ScanSummary(p.Scan))
		}
		rows, err := executor.ExecuteSelect(p, e.store, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Rows: rows, Status: "success"}, nil
	case *n1ql.Insert:
		mr, err := executor.ExecuteInsert(t, e.store, e.store, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Rows: mr.Returning, MutationCount: mr.MutationCount, Status: "success"}, nil
	case *n1ql.Update:
		mr, err := executor.ExecuteUpdate(t, e.store, e.store, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Rows: mr.Returning, MutationCount: mr.MutationCount, Status: "success"}, nil
	case *n1ql.Delete:
		mr, err := executor.ExecuteDelete(t, e.store, e.store, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Rows: mr.Returning, MutationCount: mr.MutationCount, Status: "success"}, nil
	case *n1ql.CreateIndex:
		if err := e.store.CreateIndex(t); err != nil {
			return nil, err
		}
		return &Result{Status: "created"}, nil
	case *n1ql.DropIndex:
		if err := e.store.DropIndex(t.Keyspace, t.Name); err != nil {
			return nil, err
		}
		return &Result{Status: "dropped"}, nil
	}
	return nil, fmt.Errorf("query: unsupported statement %T", stmt)
}

// explain plans without executing (§4.5.3: "an EXPLAIN statement can be
// used before any N1QL statement to request information about the
// execution plan").
func (e *Engine) explain(ex *n1ql.Explain) (*Result, error) {
	switch t := ex.Target.(type) {
	case *n1ql.Select:
		p, err := planner.PlanSelect(t, e.store)
		if err != nil {
			return nil, err
		}
		return &Result{Rows: []any{normalizePlan(p.Describe())}, Status: "success"}, nil
	case *n1ql.Insert:
		return &Result{Rows: []any{map[string]any{"#operator": "Insert", "keyspace": t.Keyspace}}, Status: "success"}, nil
	case *n1ql.Update, *n1ql.Delete:
		ks, alias, useKeys, where, limit := mutationParts(t)
		sel := &n1ql.Select{
			Keyspace: ks, Alias: alias, UseKeys: useKeys, Where: where, Limit: limit,
			Projection: []n1ql.ResultTerm{{Star: true}},
		}
		p, err := planner.PlanSelect(sel, e.store)
		if err != nil {
			return nil, err
		}
		name := "Update"
		if _, ok := t.(*n1ql.Delete); ok {
			name = "Delete"
		}
		desc := normalizePlan(p.Describe())
		desc["#mutation"] = name
		return &Result{Rows: []any{desc}, Status: "success"}, nil
	}
	return nil, fmt.Errorf("query: cannot EXPLAIN %T", ex.Target)
}

func mutationParts(stmt n1ql.Statement) (ks, alias string, useKeys, where, limit n1ql.Expr) {
	switch t := stmt.(type) {
	case *n1ql.Update:
		return t.Keyspace, t.Alias, t.UseKeys, t.Where, t.Limit
	case *n1ql.Delete:
		return t.Keyspace, t.Alias, t.UseKeys, t.Where, t.Limit
	}
	return "", "", nil, nil, nil
}

// normalizePlan converts the planner's map[string]any tree (which may
// contain []map[string]any) into plain JSON-encodable values.
func normalizePlan(m map[string]any) map[string]any {
	out := make(map[string]any, len(m))
	for k, v := range m {
		switch t := v.(type) {
		case []map[string]any:
			arr := make([]any, len(t))
			for i, e := range t {
				arr[i] = normalizePlan(e)
			}
			out[k] = arr
		case map[string]any:
			out[k] = normalizePlan(t)
		case []string:
			arr := make([]any, len(t))
			for i, s := range t {
				arr[i] = s
			}
			out[k] = arr
		default:
			out[k] = v
		}
	}
	return out
}
