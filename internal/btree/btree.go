// Package btree implements the ordered index structure shared by the
// view engine and the GSI indexer: an in-memory B+tree over
// collation-encoded byte keys.
//
// Its distinguishing feature reproduces the paper's view-index design
// (§4.3.3): "A key characteristic of a view index is that it stores the
// pre-computed aggregates defined in the Reduce function as a part of
// the index tree. This allows for very fast aggregation at query time."
// Every interior node carries a reduce annotation maintained on each
// mutation; ReduceRange answers aggregate queries over a key range in
// O(log n) by combining whole-subtree annotations.
package btree

import "bytes"

const (
	maxItems = 32 // max entries per leaf / children per interior node
)

// Reducer computes the pre-aggregated annotations. Map converts one
// leaf entry to a partial aggregate; Merge combines partials. Merge
// must be associative; Zero is the identity (empty range result).
type Reducer interface {
	Map(key []byte, val any) any
	Merge(parts ...any) any
	Zero() any
}

// Tree is a B+tree mapping unique byte keys to values. The zero-value
// Tree is not usable; call New. Not safe for concurrent use — callers
// wrap it with their own locking.
type Tree struct {
	root    *node
	reducer Reducer // nil = no annotations maintained
	size    int
}

type node struct {
	leaf     bool
	keys     [][]byte
	vals     []any   // leaf entries
	children []*node // interior children
	reduce   any     // annotation over the whole subtree
}

// New creates an empty tree. reducer may be nil when range-reduce
// queries are not needed (plain GSI indexes).
func New(reducer Reducer) *Tree {
	return &Tree{root: &node{leaf: true}, reducer: reducer}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Get returns the value for key.
func (t *Tree) Get(key []byte) (any, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n, key)]
	}
	i, ok := leafIndex(n, key)
	if !ok {
		return nil, false
	}
	return n.vals[i], true
}

// childIndex picks the child to descend into: the last child whose
// separator key is <= key. Interior layout: children[0], keys[0],
// children[1], keys[1], ... keys[i] is the smallest key in
// children[i+1]'s subtree.
func childIndex(n *node, key []byte) int {
	i := 0
	for i < len(n.keys) && bytes.Compare(n.keys[i], key) <= 0 {
		i++
	}
	return i
}

// leafIndex finds key's position in a leaf (exact or insertion point).
func leafIndex(n *node, key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if c := bytes.Compare(n.keys[mid], key); c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && bytes.Equal(n.keys[lo], key)
}

// Set inserts or replaces key's value. It reports whether the key was
// newly inserted.
func (t *Tree) Set(key []byte, val any) bool {
	key = append([]byte(nil), key...)
	inserted, split := t.insert(t.root, key, val)
	if split != nil {
		old := t.root
		t.root = &node{
			keys:     [][]byte{split.key},
			children: []*node{old, split.right},
		}
		t.annotate(t.root)
	}
	if inserted {
		t.size++
	}
	return inserted
}

type splitResult struct {
	key   []byte
	right *node
}

func (t *Tree) insert(n *node, key []byte, val any) (bool, *splitResult) {
	if n.leaf {
		i, found := leafIndex(n, key)
		if found {
			n.vals[i] = val
			t.annotate(n)
			return false, t.maybeSplit(n)
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		t.annotate(n)
		return true, t.maybeSplit(n)
	}
	ci := childIndex(n, key)
	inserted, split := t.insert(n.children[ci], key, val)
	if split != nil {
		n.keys = append(n.keys, nil)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = split.key
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = split.right
	}
	t.annotate(n)
	return inserted, t.maybeSplit(n)
}

func (t *Tree) maybeSplit(n *node) *splitResult {
	if n.leaf {
		if len(n.keys) <= maxItems {
			return nil
		}
		mid := len(n.keys) / 2
		right := &node{
			leaf: true,
			keys: append([][]byte(nil), n.keys[mid:]...),
			vals: append([]any(nil), n.vals[mid:]...),
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		t.annotate(n)
		t.annotate(right)
		return &splitResult{key: right.keys[0], right: right}
	}
	if len(n.children) <= maxItems {
		return nil
	}
	mid := len(n.children) / 2
	sepKey := n.keys[mid-1]
	right := &node{
		keys:     append([][]byte(nil), n.keys[mid:]...),
		children: append([]*node(nil), n.children[mid:]...),
	}
	n.keys = n.keys[:mid-1]
	n.children = n.children[:mid]
	t.annotate(n)
	t.annotate(right)
	return &splitResult{key: sepKey, right: right}
}

// Delete removes key, reporting whether it existed. Underflowed nodes
// are not rebalanced (empty ones are removed); the tree stays correct
// and, under the steady churn of index maintenance, acceptably shallow.
func (t *Tree) Delete(key []byte) bool {
	deleted := t.del(t.root, key)
	if deleted {
		t.size--
	}
	// Collapse a root with a single child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	return deleted
}

func (t *Tree) del(n *node, key []byte) bool {
	if n.leaf {
		i, found := leafIndex(n, key)
		if !found {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		t.annotate(n)
		return true
	}
	ci := childIndex(n, key)
	deleted := t.del(n.children[ci], key)
	if deleted {
		child := n.children[ci]
		empty := (child.leaf && len(child.keys) == 0) || (!child.leaf && len(child.children) == 0)
		if empty && len(n.children) > 1 {
			n.children = append(n.children[:ci], n.children[ci+1:]...)
			if ci == 0 {
				n.keys = n.keys[1:]
			} else {
				n.keys = append(n.keys[:ci-1], n.keys[ci:]...)
			}
		}
		t.annotate(n)
	}
	return deleted
}

func (t *Tree) annotate(n *node) {
	if t.reducer == nil {
		return
	}
	if n.leaf {
		parts := make([]any, len(n.keys))
		for i := range n.keys {
			parts[i] = t.reducer.Map(n.keys[i], n.vals[i])
		}
		n.reduce = t.reducer.Merge(parts...)
		return
	}
	parts := make([]any, len(n.children))
	for i, c := range n.children {
		parts[i] = c.reduce
	}
	n.reduce = t.reducer.Merge(parts...)
}

// Ascend visits entries with lo <= key < hi in order (nil = unbounded).
// Return false from fn to stop.
func (t *Tree) Ascend(lo, hi []byte, fn func(key []byte, val any) bool) {
	t.ascend(t.root, lo, hi, fn)
}

func (t *Tree) ascend(n *node, lo, hi []byte, fn func([]byte, any) bool) bool {
	if n.leaf {
		start := 0
		if lo != nil {
			start, _ = leafIndex(n, lo)
		}
		for i := start; i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return false
			}
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		return true
	}
	start := 0
	if lo != nil {
		start = childIndex(n, lo)
	}
	for i := start; i < len(n.children); i++ {
		if hi != nil && i > 0 && i-1 < len(n.keys) && bytes.Compare(n.keys[i-1], hi) >= 0 {
			return false
		}
		if !t.ascend(n.children[i], lo, hi, fn) {
			return false
		}
	}
	return true
}

// Descend visits entries with lo <= key < hi in reverse order.
func (t *Tree) Descend(lo, hi []byte, fn func(key []byte, val any) bool) {
	t.descend(t.root, lo, hi, fn)
}

func (t *Tree) descend(n *node, lo, hi []byte, fn func([]byte, any) bool) bool {
	if n.leaf {
		for i := len(n.keys) - 1; i >= 0; i-- {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				continue
			}
			if lo != nil && bytes.Compare(n.keys[i], lo) < 0 {
				return false
			}
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		return true
	}
	for i := len(n.children) - 1; i >= 0; i-- {
		if lo != nil && i > 0 && i-1 < len(n.keys) && bytes.Compare(n.keys[i-1], lo) < 0 {
			// children before this one are entirely below lo; visit this
			// child then stop.
			if !t.descend(n.children[i], lo, hi, fn) {
				return false
			}
			return false
		}
		if !t.descend(n.children[i], lo, hi, fn) {
			return false
		}
	}
	return true
}

// ReduceAll returns the annotation over the entire tree in O(1).
func (t *Tree) ReduceAll() any {
	if t.reducer == nil {
		return nil
	}
	if t.root.leaf && len(t.root.keys) == 0 {
		return t.reducer.Zero()
	}
	return t.root.reduce
}

// ReduceRange aggregates entries with lo <= key < hi (nil = unbounded)
// in O(log n): whole subtrees inside the range contribute their stored
// annotation; only the range edges descend to leaves.
func (t *Tree) ReduceRange(lo, hi []byte) any {
	if t.reducer == nil {
		return nil
	}
	return t.reduceRange(t.root, lo, hi)
}

func (t *Tree) reduceRange(n *node, lo, hi []byte) any {
	if n.leaf {
		var parts []any
		for i := range n.keys {
			if lo != nil && bytes.Compare(n.keys[i], lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				break
			}
			parts = append(parts, t.reducer.Map(n.keys[i], n.vals[i]))
		}
		return t.reducer.Merge(parts...)
	}
	var parts []any
	for i, c := range n.children {
		// The subtree at children[i] spans [sep(i-1), sep(i)) where
		// sep(-1) = -inf and sep(len) = +inf.
		var subLo, subHi []byte
		if i > 0 {
			subLo = n.keys[i-1]
		}
		if i < len(n.keys) {
			subHi = n.keys[i]
		}
		// Skip subtrees wholly outside [lo, hi).
		if hi != nil && subLo != nil && bytes.Compare(subLo, hi) >= 0 {
			break
		}
		if lo != nil && subHi != nil && bytes.Compare(subHi, lo) <= 0 {
			continue
		}
		// Whole subtree inside the range: use its annotation.
		loCovers := lo == nil || (subLo != nil && bytes.Compare(lo, subLo) <= 0)
		hiCovers := hi == nil || (subHi != nil && bytes.Compare(subHi, hi) <= 0)
		if loCovers && hiCovers {
			parts = append(parts, c.reduce)
			continue
		}
		parts = append(parts, t.reduceRange(c, lo, hi))
	}
	return t.reducer.Merge(parts...)
}

// Height returns the tree height (diagnostics / tests).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}
