package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// countReducer counts entries.
type countReducer struct{}

func (countReducer) Map(_ []byte, _ any) any { return 1.0 }
func (countReducer) Merge(parts ...any) any {
	s := 0.0
	for _, p := range parts {
		if p != nil {
			s += p.(float64)
		}
	}
	return s
}
func (countReducer) Zero() any { return 0.0 }

// sumReducer sums float64 values.
type sumReducer struct{}

func (sumReducer) Map(_ []byte, v any) any { return v.(float64) }
func (sumReducer) Merge(parts ...any) any {
	s := 0.0
	for _, p := range parts {
		if p != nil {
			s += p.(float64)
		}
	}
	return s
}
func (sumReducer) Zero() any { return 0.0 }

func key(i int) []byte { return []byte(fmt.Sprintf("key%06d", i)) }

func TestSetGetDelete(t *testing.T) {
	tr := New(nil)
	if _, ok := tr.Get(key(1)); ok {
		t.Fatal("empty tree Get")
	}
	if !tr.Set(key(1), "a") {
		t.Fatal("first Set should insert")
	}
	if tr.Set(key(1), "b") {
		t.Fatal("second Set should replace")
	}
	v, ok := tr.Get(key(1))
	if !ok || v != "b" {
		t.Fatalf("Get = %v %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Delete(key(1)) {
		t.Fatal("Delete should report true")
	}
	if tr.Delete(key(1)) {
		t.Fatal("double Delete should report false")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
}

func TestLargeOrderedInsertAndScan(t *testing.T) {
	tr := New(nil)
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Set(key(i), float64(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	i := 0
	tr.Ascend(nil, nil, func(k []byte, v any) bool {
		if !bytes.Equal(k, key(i)) {
			t.Fatalf("scan order broke at %d: %s", i, k)
		}
		i++
		return true
	})
	if i != n {
		t.Fatalf("scanned %d", i)
	}
	if h := tr.Height(); h > 5 {
		t.Errorf("height %d too tall for %d ordered inserts", h, n)
	}
}

func TestRandomInsertDeleteAgainstModel(t *testing.T) {
	tr := New(countReducer{})
	model := map[string]float64{}
	r := rand.New(rand.NewSource(7))
	for op := 0; op < 20000; op++ {
		k := key(r.Intn(800))
		if r.Intn(3) == 0 {
			delete(model, string(k))
			tr.Delete(k)
		} else {
			v := r.Float64()
			model[string(k)] = v
			tr.Set(k, v)
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	// Everything retrievable with the right value.
	for k, want := range model {
		v, ok := tr.Get([]byte(k))
		if !ok || v.(float64) != want {
			t.Fatalf("Get(%s) = %v %v, want %v", k, v, ok, want)
		}
	}
	// Full scan is sorted and complete.
	var keys []string
	tr.Ascend(nil, nil, func(k []byte, _ any) bool {
		keys = append(keys, string(k))
		return true
	})
	if !sort.StringsAreSorted(keys) {
		t.Fatal("scan not sorted")
	}
	if len(keys) != len(model) {
		t.Fatalf("scan %d keys, model %d", len(keys), len(model))
	}
	// Annotation agrees with the count.
	if got := tr.ReduceAll().(float64); got != float64(len(model)) {
		t.Fatalf("ReduceAll = %v, want %d", got, len(model))
	}
}

func TestAscendRange(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 100; i++ {
		tr.Set(key(i), i)
	}
	var got []int
	tr.Ascend(key(10), key(20), func(_ []byte, v any) bool {
		got = append(got, v.(int))
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range scan: %v", got)
	}
	// Unbounded below.
	got = nil
	tr.Ascend(nil, key(3), func(_ []byte, v any) bool { got = append(got, v.(int)); return true })
	if len(got) != 3 {
		t.Fatalf("lo-unbounded: %v", got)
	}
	// Unbounded above.
	got = nil
	tr.Ascend(key(97), nil, func(_ []byte, v any) bool { got = append(got, v.(int)); return true })
	if len(got) != 3 {
		t.Fatalf("hi-unbounded: %v", got)
	}
	// Early stop.
	count := 0
	tr.Ascend(nil, nil, func(_ []byte, _ any) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop count %d", count)
	}
}

func TestDescend(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 100; i++ {
		tr.Set(key(i), i)
	}
	var got []int
	tr.Descend(key(10), key(20), func(_ []byte, v any) bool {
		got = append(got, v.(int))
		return true
	})
	if len(got) != 10 || got[0] != 19 || got[9] != 10 {
		t.Fatalf("descend: %v", got)
	}
	got = nil
	tr.Descend(nil, nil, func(_ []byte, v any) bool { got = append(got, v.(int)); return len(got) < 3 })
	if len(got) != 3 || got[0] != 99 {
		t.Fatalf("descend all: %v", got)
	}
}

func TestReduceRangeMatchesScan(t *testing.T) {
	tr := New(sumReducer{})
	r := rand.New(rand.NewSource(11))
	vals := map[int]float64{}
	for i := 0; i < 3000; i++ {
		v := float64(r.Intn(100))
		vals[i] = v
		tr.Set(key(i), v)
	}
	// Delete a third to exercise annotations under deletion.
	for i := 0; i < 3000; i += 3 {
		tr.Delete(key(i))
		delete(vals, i)
	}
	check := func(lo, hi int) {
		var want float64
		for i := lo; i < hi; i++ {
			if v, ok := vals[i]; ok {
				want += v
			}
		}
		var loK, hiK []byte
		if lo >= 0 {
			loK = key(lo)
		}
		if hi >= 0 {
			hiK = key(hi)
		}
		got := tr.ReduceRange(loK, hiK).(float64)
		if got != want {
			t.Fatalf("ReduceRange(%d,%d) = %v, want %v", lo, hi, got, want)
		}
	}
	check(0, 3000)
	check(100, 200)
	check(0, 1)
	check(1500, 1501)
	check(2999, 3000)
	for i := 0; i < 50; i++ {
		lo := r.Intn(3000)
		hi := lo + r.Intn(3000-lo)
		check(lo, hi)
	}
	// Full-tree shortcut.
	var total float64
	for _, v := range vals {
		total += v
	}
	if got := tr.ReduceAll().(float64); got != total {
		t.Fatalf("ReduceAll = %v, want %v", got, total)
	}
}

func TestReduceAllEmptyTree(t *testing.T) {
	tr := New(countReducer{})
	if got := tr.ReduceAll().(float64); got != 0 {
		t.Fatalf("empty ReduceAll = %v", got)
	}
	if got := tr.ReduceRange(nil, nil).(float64); got != 0 {
		t.Fatalf("empty ReduceRange = %v", got)
	}
	// Tree without reducer returns nil.
	if New(nil).ReduceAll() != nil {
		t.Fatal("nil reducer should yield nil")
	}
}

func TestQuickTreeMatchesSortedMap(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := New(countReducer{})
		model := map[string]bool{}
		for _, op := range ops {
			k := key(int(op % 500))
			if op%7 == 0 {
				tr.Delete(k)
				delete(model, string(k))
			} else {
				tr.Set(k, true)
				model[string(k)] = true
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		count := 0
		prev := []byte(nil)
		okScan := true
		tr.Ascend(nil, nil, func(k []byte, _ any) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				okScan = false
			}
			prev = append(prev[:0], k...)
			if !model[string(k)] {
				okScan = false
			}
			count++
			return true
		})
		return okScan && count == len(model) && tr.ReduceAll().(float64) == float64(len(model))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKeysAreCopied(t *testing.T) {
	tr := New(nil)
	k := []byte("mutable")
	tr.Set(k, 1)
	k[0] = 'X'
	if _, ok := tr.Get([]byte("mutable")); !ok {
		t.Fatal("tree must copy keys on insert")
	}
}
