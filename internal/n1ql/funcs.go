package n1ql

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"couchgo/internal/value"
)

// builtins maps (upper-cased) function names to implementations. Each
// function receives already-evaluated arguments and applies its own
// MISSING/NULL discipline (generally: MISSING propagates, wrong types
// yield NULL).
var builtins = map[string]func([]any) (any, error){}

func register(name string, minArgs, maxArgs int, fn func([]any) (any, error)) {
	builtins[name] = func(args []any) (any, error) {
		if len(args) < minArgs || (maxArgs >= 0 && len(args) > maxArgs) {
			return nil, fmt.Errorf("n1ql: %s expects %d..%d arguments, got %d", name, minArgs, maxArgs, len(args))
		}
		return fn(args)
	}
}

// propagate returns (result, true) when any argument short-circuits the
// function per MISSING/NULL discipline.
func propagate(args ...any) (any, bool) {
	for _, a := range args {
		if value.IsMissing(a) {
			return value.Missing, true
		}
	}
	for _, a := range args {
		if a == nil {
			return nil, true
		}
	}
	return nil, false
}

func stringArg(v any) (string, bool) { s, ok := v.(string); return s, ok }

func init() {
	// --- type inspection / conversion ---
	register("TYPE", 1, 1, func(args []any) (any, error) {
		return value.KindOf(args[0]).String(), nil
	})
	register("TO_STRING", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		switch t := args[0].(type) {
		case string:
			return t, nil
		case bool:
			return strconv.FormatBool(t), nil
		default:
			if f, ok := value.AsNumber(args[0]); ok {
				return value.FormatNumber(f), nil
			}
		}
		return nil, nil
	})
	register("TO_NUMBER", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		if f, ok := value.AsNumber(args[0]); ok {
			return f, nil
		}
		if s, ok := stringArg(args[0]); ok {
			if f, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
				return f, nil
			}
		}
		switch args[0] {
		case true:
			return 1.0, nil
		case false:
			return 0.0, nil
		}
		return nil, nil
	})

	// --- conditional ---
	register("IFMISSING", 2, -1, func(args []any) (any, error) {
		for _, a := range args {
			if !value.IsMissing(a) {
				return a, nil
			}
		}
		return value.Missing, nil
	})
	register("IFNULL", 2, -1, func(args []any) (any, error) {
		for _, a := range args {
			if a != nil {
				return a, nil
			}
		}
		return nil, nil
	})
	register("IFMISSINGORNULL", 2, -1, func(args []any) (any, error) {
		for _, a := range args {
			if !value.IsMissing(a) && a != nil {
				return a, nil
			}
		}
		return nil, nil
	})
	builtins["COALESCE"] = builtins["IFMISSINGORNULL"]
	register("GREATEST", 1, -1, func(args []any) (any, error) {
		var best any = value.Missing
		for _, a := range args {
			if value.IsMissing(a) || a == nil {
				continue
			}
			if value.IsMissing(best) || value.Compare(a, best) > 0 {
				best = a
			}
		}
		if value.IsMissing(best) {
			return nil, nil
		}
		return best, nil
	})
	register("LEAST", 1, -1, func(args []any) (any, error) {
		var best any = value.Missing
		for _, a := range args {
			if value.IsMissing(a) || a == nil {
				continue
			}
			if value.IsMissing(best) || value.Compare(a, best) < 0 {
				best = a
			}
		}
		if value.IsMissing(best) {
			return nil, nil
		}
		return best, nil
	})

	// --- strings ---
	register("UPPER", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		if s, ok := stringArg(args[0]); ok {
			return strings.ToUpper(s), nil
		}
		return nil, nil
	})
	register("LOWER", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		if s, ok := stringArg(args[0]); ok {
			return strings.ToLower(s), nil
		}
		return nil, nil
	})
	register("LENGTH", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		if s, ok := stringArg(args[0]); ok {
			return float64(len(s)), nil
		}
		return nil, nil
	})
	register("SUBSTR", 2, 3, func(args []any) (any, error) {
		if v, short := propagate(args...); short {
			return v, nil
		}
		s, ok := stringArg(args[0])
		start, ok2 := value.AsNumber(args[1])
		if !ok || !ok2 {
			return nil, nil
		}
		i := int(start)
		if i < 0 {
			i += len(s)
		}
		if i < 0 || i > len(s) {
			return nil, nil
		}
		end := len(s)
		if len(args) == 3 {
			n, ok := value.AsNumber(args[2])
			if !ok || n < 0 {
				return nil, nil
			}
			if e := i + int(n); e < end {
				end = e
			}
		}
		return s[i:end], nil
	})
	register("CONTAINS", 2, 2, func(args []any) (any, error) {
		if v, short := propagate(args...); short {
			return v, nil
		}
		s, ok := stringArg(args[0])
		sub, ok2 := stringArg(args[1])
		if !ok || !ok2 {
			return nil, nil
		}
		return strings.Contains(s, sub), nil
	})
	register("POSITION", 2, 2, func(args []any) (any, error) {
		if v, short := propagate(args...); short {
			return v, nil
		}
		s, ok := stringArg(args[0])
		sub, ok2 := stringArg(args[1])
		if !ok || !ok2 {
			return nil, nil
		}
		return float64(strings.Index(s, sub)), nil
	})
	register("TRIM", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		if s, ok := stringArg(args[0]); ok {
			return strings.TrimSpace(s), nil
		}
		return nil, nil
	})
	register("REPLACE", 3, 3, func(args []any) (any, error) {
		if v, short := propagate(args...); short {
			return v, nil
		}
		s, ok := stringArg(args[0])
		old, ok2 := stringArg(args[1])
		nw, ok3 := stringArg(args[2])
		if !ok || !ok2 || !ok3 {
			return nil, nil
		}
		return strings.ReplaceAll(s, old, nw), nil
	})
	register("SPLIT", 1, 2, func(args []any) (any, error) {
		if v, short := propagate(args...); short {
			return v, nil
		}
		s, ok := stringArg(args[0])
		if !ok {
			return nil, nil
		}
		var parts []string
		if len(args) == 2 {
			sep, ok := stringArg(args[1])
			if !ok {
				return nil, nil
			}
			parts = strings.Split(s, sep)
		} else {
			parts = strings.Fields(s)
		}
		out := make([]any, len(parts))
		for i, p := range parts {
			out[i] = p
		}
		return out, nil
	})

	// --- numbers ---
	register("ABS", 1, 1, numeric1(math.Abs))
	register("CEIL", 1, 1, numeric1(math.Ceil))
	register("FLOOR", 1, 1, numeric1(math.Floor))
	register("ROUND", 1, 1, numeric1(math.Round))
	register("SQRT", 1, 1, numeric1(math.Sqrt))
	register("TRUNC", 1, 1, numeric1(math.Trunc))
	register("POWER", 2, 2, func(args []any) (any, error) {
		if v, short := propagate(args...); short {
			return v, nil
		}
		a, ok := value.AsNumber(args[0])
		b, ok2 := value.AsNumber(args[1])
		if !ok || !ok2 {
			return nil, nil
		}
		return math.Pow(a, b), nil
	})

	// --- arrays ---
	register("ARRAY_LENGTH", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		if arr, ok := args[0].([]any); ok {
			return float64(len(arr)), nil
		}
		return nil, nil
	})
	register("ARRAY_CONTAINS", 2, 2, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		arr, ok := args[0].([]any)
		if !ok {
			return nil, nil
		}
		for _, el := range arr {
			if value.Compare(el, args[1]) == 0 {
				return true, nil
			}
		}
		return false, nil
	})
	register("ARRAY_APPEND", 2, -1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		arr, ok := args[0].([]any)
		if !ok {
			return nil, nil
		}
		out := append(append([]any{}, arr...), args[1:]...)
		return out, nil
	})
	register("ARRAY_DISTINCT", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		arr, ok := args[0].([]any)
		if !ok {
			return nil, nil
		}
		var out []any
		for _, el := range arr {
			dup := false
			for _, seen := range out {
				if value.Compare(el, seen) == 0 {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, el)
			}
		}
		if out == nil {
			out = []any{}
		}
		return out, nil
	})
	register("ARRAY_MIN", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		arr, ok := args[0].([]any)
		if !ok || len(arr) == 0 {
			return nil, nil
		}
		best := arr[0]
		for _, el := range arr[1:] {
			if value.Compare(el, best) < 0 {
				best = el
			}
		}
		return best, nil
	})
	register("ARRAY_MAX", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		arr, ok := args[0].([]any)
		if !ok || len(arr) == 0 {
			return nil, nil
		}
		best := arr[0]
		for _, el := range arr[1:] {
			if value.Compare(el, best) > 0 {
				best = el
			}
		}
		return best, nil
	})
	register("ARRAY_SORT", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		arr, ok := args[0].([]any)
		if !ok {
			return nil, nil
		}
		out := append([]any{}, arr...)
		sort.SliceStable(out, func(i, j int) bool { return value.Compare(out[i], out[j]) < 0 })
		return out, nil
	})

	// --- objects ---
	register("OBJECT_NAMES", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		names := value.FieldNames(args[0])
		if names == nil {
			return nil, nil
		}
		out := make([]any, len(names))
		for i, n := range names {
			out[i] = n
		}
		return out, nil
	})
	register("OBJECT_VALUES", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		obj, ok := args[0].(map[string]any)
		if !ok {
			return nil, nil
		}
		names := value.FieldNames(args[0])
		out := make([]any, len(names))
		for i, n := range names {
			out[i] = obj[n]
		}
		return out, nil
	})

	// EXISTS e: true when e is a non-empty array.
	register("EXISTS", 1, 1, func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		if arr, ok := args[0].([]any); ok {
			return len(arr) > 0, nil
		}
		return nil, nil
	})
}

func numeric1(fn func(float64) float64) func([]any) (any, error) {
	return func(args []any) (any, error) {
		if v, short := propagate(args[0]); short {
			return v, nil
		}
		f, ok := value.AsNumber(args[0])
		if !ok {
			return nil, nil
		}
		return fn(f), nil
	}
}

// --- aggregates ---

// aggregateNames are the aggregate functions usable with GROUP BY.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"ARRAY_AGG": true,
}

// IsAggregate reports whether name (upper-cased) is an aggregate.
func IsAggregate(name string) bool { return aggregateNames[name] }

// HasAggregate reports whether the expression tree contains an
// aggregate call — the planner uses it to decide grouping.
func HasAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if fc, ok := x.(*FuncCall); ok && IsAggregate(fc.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Aggregator accumulates one aggregate function over a group.
type Aggregator struct {
	fn       string
	distinct bool
	count    float64
	sum      float64
	sawNum   bool
	min, max any
	items    []any
	seen     []any // for DISTINCT
}

// NewAggregator creates an accumulator for the named aggregate.
func NewAggregator(fc *FuncCall) *Aggregator {
	return &Aggregator{fn: fc.Name, distinct: fc.Distinct}
}

// Add feeds one input value (already evaluated; MISSING/NULL are
// ignored per SQL aggregate semantics, except COUNT(*) which the
// executor feeds with TRUE for every row).
func (a *Aggregator) Add(v any) {
	if value.IsMissing(v) || v == nil {
		return
	}
	if a.distinct {
		for _, s := range a.seen {
			if value.Compare(s, v) == 0 {
				return
			}
		}
		a.seen = append(a.seen, v)
	}
	a.count++
	if f, ok := value.AsNumber(v); ok {
		a.sum += f
		a.sawNum = true
	}
	if a.min == nil || value.Compare(v, a.min) < 0 {
		a.min = v
	}
	if a.max == nil || value.Compare(v, a.max) > 0 {
		a.max = v
	}
	if a.fn == "ARRAY_AGG" {
		a.items = append(a.items, v)
	}
}

// Result produces the aggregate's final value.
func (a *Aggregator) Result() any {
	switch a.fn {
	case "COUNT":
		return a.count
	case "SUM":
		if !a.sawNum {
			return nil
		}
		return a.sum
	case "AVG":
		if !a.sawNum || a.count == 0 {
			return nil
		}
		return a.sum / a.count
	case "MIN":
		if a.min == nil {
			return nil
		}
		return a.min
	case "MAX":
		if a.max == nil {
			return nil
		}
		return a.max
	case "ARRAY_AGG":
		if a.items == nil {
			return []any{}
		}
		return a.items
	}
	return nil
}

// WalkExpr visits e and every sub-expression, stopping early when fn
// returns false for a node (its children are then skipped).
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch t := e.(type) {
	case *Field:
		WalkExpr(t.Recv, fn)
	case *Element:
		WalkExpr(t.Recv, fn)
		WalkExpr(t.Index, fn)
	case *ArrayConstruct:
		for _, el := range t.Elems {
			WalkExpr(el, fn)
		}
	case *ObjectConstruct:
		for _, v := range t.Vals {
			WalkExpr(v, fn)
		}
	case *Binary:
		WalkExpr(t.LHS, fn)
		WalkExpr(t.RHS, fn)
	case *Unary:
		WalkExpr(t.Operand, fn)
	case *Is:
		WalkExpr(t.Operand, fn)
	case *Between:
		WalkExpr(t.Operand, fn)
		WalkExpr(t.Lo, fn)
		WalkExpr(t.Hi, fn)
	case *FuncCall:
		for _, a := range t.Args {
			WalkExpr(a, fn)
		}
	case *CollPredicate:
		WalkExpr(t.Coll, fn)
		WalkExpr(t.Satisfies, fn)
	case *ArrayComprehension:
		WalkExpr(t.Mapper, fn)
		WalkExpr(t.Coll, fn)
		WalkExpr(t.When, fn)
	case *CaseExpr:
		WalkExpr(t.Operand, fn)
		for i := range t.Whens {
			WalkExpr(t.Whens[i], fn)
			WalkExpr(t.Thens[i], fn)
		}
		WalkExpr(t.Else, fn)
	}
}
