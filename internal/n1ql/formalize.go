package n1ql

// Formalize rewrites an expression into keyspace-canonical form: every
// reference to the keyspace's document becomes explicit — the bare
// identifier `email` and the qualified `p.email` (for alias p) both
// become `self.email`, and `meta(p)` becomes `meta()`. Two expressions
// denote the same document property iff their formalized String()s are
// equal, which is how the planner matches query predicates against
// index definitions and how GSI stores index key expressions.
//
// Variables bound by ANY/EVERY and ARRAY comprehensions shadow the
// alias and are left untouched.
func Formalize(e Expr, alias string) Expr {
	return formalize(e, alias, map[string]bool{})
}

func formalize(e Expr, alias string, bound map[string]bool) Expr {
	switch t := e.(type) {
	case nil:
		return nil
	case *Literal, *Param, *Self:
		return e
	case *Ident:
		if bound[t.Name] {
			return t
		}
		if t.Name == alias {
			return &Self{}
		}
		return &Field{Recv: &Self{}, Name: t.Name}
	case *Field:
		return &Field{Recv: formalize(t.Recv, alias, bound), Name: t.Name}
	case *Element:
		return &Element{Recv: formalize(t.Recv, alias, bound), Index: formalize(t.Index, alias, bound)}
	case *ArrayConstruct:
		out := &ArrayConstruct{Elems: make([]Expr, len(t.Elems))}
		for i, el := range t.Elems {
			out.Elems[i] = formalize(el, alias, bound)
		}
		return out
	case *ObjectConstruct:
		out := &ObjectConstruct{Names: t.Names, Vals: make([]Expr, len(t.Vals))}
		for i, v := range t.Vals {
			out.Vals[i] = formalize(v, alias, bound)
		}
		return out
	case *Binary:
		return &Binary{Op: t.Op, LHS: formalize(t.LHS, alias, bound), RHS: formalize(t.RHS, alias, bound)}
	case *Unary:
		return &Unary{Op: t.Op, Operand: formalize(t.Operand, alias, bound)}
	case *Is:
		return &Is{Kind: t.Kind, Operand: formalize(t.Operand, alias, bound)}
	case *Between:
		return &Between{
			Operand: formalize(t.Operand, alias, bound),
			Lo:      formalize(t.Lo, alias, bound),
			Hi:      formalize(t.Hi, alias, bound),
			Not:     t.Not,
		}
	case *FuncCall:
		out := &FuncCall{Name: t.Name, Distinct: t.Distinct, Star: t.Star, Args: make([]Expr, len(t.Args))}
		for i, a := range t.Args {
			out.Args[i] = formalize(a, alias, bound)
		}
		return out
	case *MetaExpr:
		if t.Alias == "" || t.Alias == alias {
			return &MetaExpr{}
		}
		return t
	case *CollPredicate:
		inner := child(bound, t.Var)
		return &CollPredicate{
			Kind:      t.Kind,
			Var:       t.Var,
			Coll:      formalize(t.Coll, alias, bound),
			Satisfies: formalize(t.Satisfies, alias, inner),
		}
	case *ArrayComprehension:
		inner := child(bound, t.Var)
		return &ArrayComprehension{
			Mapper: formalize(t.Mapper, alias, inner),
			Var:    t.Var,
			Coll:   formalize(t.Coll, alias, bound),
			When:   formalize(t.When, alias, inner),
		}
	case *CaseExpr:
		out := &CaseExpr{
			Operand: formalize(t.Operand, alias, bound),
			Whens:   make([]Expr, len(t.Whens)),
			Thens:   make([]Expr, len(t.Thens)),
			Else:    formalize(t.Else, alias, bound),
		}
		for i := range t.Whens {
			out.Whens[i] = formalize(t.Whens[i], alias, bound)
			out.Thens[i] = formalize(t.Thens[i], alias, bound)
		}
		return out
	}
	return e
}

func child(bound map[string]bool, v string) map[string]bool {
	out := make(map[string]bool, len(bound)+1)
	for k := range bound {
		out[k] = true
	}
	out[v] = true
	return out
}

// ConjunctsOf splits a predicate into its top-level AND conjuncts.
func ConjunctsOf(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(ConjunctsOf(b.LHS), ConjunctsOf(b.RHS)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}

// IsConstant reports whether e references no document data (it may
// reference parameters, which are constant for one execution).
func IsConstant(e Expr) bool {
	constant := true
	WalkExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *Ident, *Field, *Element, *Self, *MetaExpr:
			constant = false
			return false
		}
		return true
	})
	return constant
}
