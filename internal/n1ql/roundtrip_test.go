package n1ql

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randExpr builds a random expression AST of bounded depth whose
// String() form must re-parse to an identical tree — the printer/parser
// round-trip property the planner's canonical-text matching relies on.
func randExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return &Literal{Val: float64(r.Intn(100))}
		case 1:
			return &Literal{Val: []string{"a", "xyz", "with space", "it's"}[r.Intn(4)]}
		case 2:
			return &Literal{Val: r.Intn(2) == 0}
		case 3:
			return &Ident{Name: []string{"a", "b", "field1", "select"}[r.Intn(4)]}
		default:
			return &Param{Name: []string{"1", "p", "min"}[r.Intn(3)]}
		}
	}
	switch r.Intn(12) {
	case 0:
		ops := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAdd, OpSub, OpMul, OpDiv, OpMod, OpConcat, OpAnd, OpOr, OpLike, OpIn}
		return &Binary{Op: ops[r.Intn(len(ops))], LHS: randExpr(r, depth-1), RHS: randExpr(r, depth-1)}
	case 1:
		return &Unary{Op: []UnOp{OpNot, OpNeg}[r.Intn(2)], Operand: randExpr(r, depth-1)}
	case 2:
		kinds := []IsKind{IsNull, IsNotNull, IsMissingP, IsNotMissing, IsValued, IsNotValued}
		return &Is{Kind: kinds[r.Intn(len(kinds))], Operand: randExpr(r, depth-1)}
	case 3:
		return &Between{Operand: randExpr(r, depth-1), Lo: randExpr(r, depth-1), Hi: randExpr(r, depth-1), Not: r.Intn(2) == 0}
	case 4:
		return &Field{Recv: randExpr(r, depth-1), Name: []string{"x", "name", "end"}[r.Intn(3)]}
	case 5:
		return &Element{Recv: randExpr(r, depth-1), Index: randExpr(r, depth-1)}
	case 6:
		n := r.Intn(3)
		ac := &ArrayConstruct{}
		for i := 0; i < n; i++ {
			ac.Elems = append(ac.Elems, randExpr(r, depth-1))
		}
		return ac
	case 7:
		oc := &ObjectConstruct{}
		for i := 0; i < r.Intn(3); i++ {
			oc.Names = append(oc.Names, []string{"k1", "k2", "k3"}[i])
			oc.Vals = append(oc.Vals, randExpr(r, depth-1))
		}
		return oc
	case 8:
		fc := &FuncCall{Name: []string{"UPPER", "LENGTH", "GREATEST"}[r.Intn(3)]}
		fc.Args = append(fc.Args, randExpr(r, depth-1))
		return fc
	case 9:
		return &CollPredicate{
			Kind: []CollKind{CollAny, CollEvery}[r.Intn(2)],
			Var:  "v", Coll: randExpr(r, depth-1), Satisfies: randExpr(r, depth-1),
		}
	case 10:
		ce := &CaseExpr{}
		if r.Intn(2) == 0 {
			ce.Operand = randExpr(r, depth-1)
		}
		ce.Whens = append(ce.Whens, randExpr(r, depth-1))
		ce.Thens = append(ce.Thens, randExpr(r, depth-1))
		if r.Intn(2) == 0 {
			ce.Else = randExpr(r, depth-1)
		}
		return ce
	default:
		ac := &ArrayComprehension{Mapper: randExpr(r, depth-1), Var: "m", Coll: randExpr(r, depth-1)}
		if r.Intn(2) == 0 {
			ac.When = randExpr(r, depth-1)
		}
		return ac
	}
}

// The planner matches expressions by the String() of *parsed* trees,
// so the invariant it needs is: one parse canonicalizes. For any AST,
// parse(print(e)) must succeed, and its printed form must be a
// fixpoint (printing and re-parsing changes nothing further). A
// hand-built AST may normalize once — e.g. the parser constant-folds
// `-(71)` into the literal -71 — but never oscillate.
func TestQuickExprPrintParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func() bool {
		e := randExpr(r, 4)
		src1 := e.String()
		p1, err := ParseExpr(src1)
		if err != nil {
			t.Logf("parse %q: %v", src1, err)
			return false
		}
		src2 := p1.String()
		p2, err := ParseExpr(src2)
		if err != nil {
			t.Logf("re-parse %q: %v", src2, err)
			return false
		}
		if p2.String() != src2 {
			t.Logf("not a fixpoint: %q -> %q", src2, p2.String())
			return false
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickFormalizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		e := randExpr(r, 3)
		once := Formalize(e, "ks")
		twice := Formalize(once, "ks")
		if once.String() != twice.String() {
			t.Fatalf("formalize not idempotent: %q -> %q (from %q)", once, twice, e)
		}
	}
}
