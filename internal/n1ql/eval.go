package n1ql

import (
	"fmt"
	"regexp"
	"strings"
	"sync"

	"couchgo/internal/value"
)

// Meta is the document metadata exposed by META(): meta().id,
// meta().cas, etc. (the workload-E query in the paper's appendix is
// `SELECT meta().id FROM bucket WHERE meta().id >= $1 LIMIT $2`).
type Meta struct {
	ID    string
	CAS   uint64
	Seqno uint64
}

func (m Meta) object() map[string]any {
	return map[string]any{
		"id":    m.ID,
		"cas":   float64(m.CAS),
		"seqno": float64(m.Seqno),
	}
}

// Context is one row's evaluation environment: bindings from alias to
// value, per-alias document metadata, query parameters, and the default
// alias bare identifiers resolve against.
type Context struct {
	Bindings map[string]any
	Metas    map[string]Meta
	Params   map[string]any
	Default  string
}

// NewContext builds a single-document context with alias as both the
// binding and the default.
func NewContext(alias string, doc any, meta Meta) *Context {
	return &Context{
		Bindings: map[string]any{alias: doc},
		Metas:    map[string]Meta{alias: meta},
		Default:  alias,
	}
}

// Child clones the context with an extra binding (UNNEST variables,
// comprehension variables). The original is not modified.
func (c *Context) Child(name string, v any) *Context {
	nb := make(map[string]any, len(c.Bindings)+1)
	for k, val := range c.Bindings {
		nb[k] = val
	}
	nb[name] = v
	return &Context{Bindings: nb, Metas: c.Metas, Params: c.Params, Default: c.Default}
}

// Bind adds/overwrites a binding in place (row assembly in the executor).
func (c *Context) Bind(name string, v any) {
	if c.Bindings == nil {
		c.Bindings = map[string]any{}
	}
	c.Bindings[name] = v
}

// Eval evaluates e in ctx. Errors are reserved for structural problems
// (unknown function, missing parameter); data-dependent oddities
// produce MISSING or NULL per N1QL semantics.
func Eval(e Expr, ctx *Context) (any, error) { return e.eval(ctx) }

// --- eval implementations ---

func (e *Literal) eval(*Context) (any, error) { return e.Val, nil }

func (e *Self) eval(ctx *Context) (any, error) {
	if v, ok := ctx.Bindings[ctx.Default]; ok {
		return v, nil
	}
	return value.Missing, nil
}

func (e *Ident) eval(ctx *Context) (any, error) {
	if v, ok := ctx.Bindings[e.Name]; ok {
		return v, nil
	}
	if ctx.Default != "" {
		if doc, ok := ctx.Bindings[ctx.Default]; ok {
			return value.Field(doc, e.Name), nil
		}
	}
	return value.Missing, nil
}

func (e *Field) eval(ctx *Context) (any, error) {
	recv, err := e.Recv.eval(ctx)
	if err != nil {
		return nil, err
	}
	return value.Field(recv, e.Name), nil
}

func (e *Element) eval(ctx *Context) (any, error) {
	recv, err := e.Recv.eval(ctx)
	if err != nil {
		return nil, err
	}
	idx, err := e.Index.eval(ctx)
	if err != nil {
		return nil, err
	}
	f, ok := value.AsNumber(idx)
	if !ok {
		return value.Missing, nil
	}
	return value.Index(recv, int(f)), nil
}

func (e *ArrayConstruct) eval(ctx *Context) (any, error) {
	out := make([]any, len(e.Elems))
	for i, el := range e.Elems {
		v, err := el.eval(ctx)
		if err != nil {
			return nil, err
		}
		if value.IsMissing(v) {
			v = nil // MISSING inside a constructed array becomes NULL
		}
		out[i] = v
	}
	return out, nil
}

func (e *ObjectConstruct) eval(ctx *Context) (any, error) {
	out := make(map[string]any, len(e.Names))
	for i := range e.Names {
		v, err := e.Vals[i].eval(ctx)
		if err != nil {
			return nil, err
		}
		if value.IsMissing(v) {
			continue // MISSING fields are omitted from objects
		}
		out[e.Names[i]] = v
	}
	return out, nil
}

func (e *Param) eval(ctx *Context) (any, error) {
	if ctx.Params != nil {
		if v, ok := ctx.Params[e.Name]; ok {
			return v, nil
		}
	}
	return nil, fmt.Errorf("n1ql: no value supplied for parameter $%s", e.Name)
}

func (e *MetaExpr) eval(ctx *Context) (any, error) {
	alias := e.Alias
	if alias == "" {
		alias = ctx.Default
	}
	if m, ok := ctx.Metas[alias]; ok {
		return m.object(), nil
	}
	return value.Missing, nil
}

func (e *Binary) eval(ctx *Context) (any, error) {
	switch e.Op {
	case OpAnd:
		return evalAnd(e.LHS, e.RHS, ctx)
	case OpOr:
		return evalOr(e.LHS, e.RHS, ctx)
	}
	l, err := e.LHS.eval(ctx)
	if err != nil {
		return nil, err
	}
	r, err := e.RHS.eval(ctx)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return evalCompare(e.Op, l, r), nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return evalArith(e.Op, l, r), nil
	case OpConcat:
		return evalConcat(l, r), nil
	case OpLike:
		return evalLike(l, r)
	case OpIn:
		return evalIn(l, r), nil
	}
	return nil, fmt.Errorf("n1ql: unknown binary operator %d", e.Op)
}

// evalAnd implements three-valued AND with MISSING:
// FALSE dominates; then MISSING; then NULL; else TRUE.
func evalAnd(lhs, rhs Expr, ctx *Context) (any, error) {
	l, err := lhs.eval(ctx)
	if err != nil {
		return nil, err
	}
	if l == false {
		return false, nil
	}
	r, err := rhs.eval(ctx)
	if err != nil {
		return nil, err
	}
	if r == false {
		return false, nil
	}
	lb := truthState(l)
	rb := truthState(r)
	if lb == stateTrue && rb == stateTrue {
		return true, nil
	}
	if lb == stateMissing || rb == stateMissing {
		return value.Missing, nil
	}
	return nil, nil
}

// evalOr: TRUE dominates; then MISSING; then NULL; else FALSE.
func evalOr(lhs, rhs Expr, ctx *Context) (any, error) {
	l, err := lhs.eval(ctx)
	if err != nil {
		return nil, err
	}
	if l == true {
		return true, nil
	}
	r, err := rhs.eval(ctx)
	if err != nil {
		return nil, err
	}
	if r == true {
		return true, nil
	}
	lb := truthState(l)
	rb := truthState(r)
	if lb == stateFalse && rb == stateFalse {
		return false, nil
	}
	if lb == stateMissing || rb == stateMissing {
		return value.Missing, nil
	}
	return nil, nil
}

type tState int

const (
	stateFalse tState = iota
	stateTrue
	stateNull
	stateMissing
)

func truthState(v any) tState {
	switch {
	case v == true:
		return stateTrue
	case v == false:
		return stateFalse
	case value.IsMissing(v):
		return stateMissing
	default:
		return stateNull // non-boolean values behave as NULL in logic
	}
}

// evalCompare: MISSING if either side MISSING; NULL if either NULL;
// else collation comparison.
func evalCompare(op BinOp, l, r any) any {
	if value.IsMissing(l) || value.IsMissing(r) {
		return value.Missing
	}
	if l == nil || r == nil {
		return nil
	}
	c := value.Compare(l, r)
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return nil
}

func evalArith(op BinOp, l, r any) any {
	if value.IsMissing(l) || value.IsMissing(r) {
		return value.Missing
	}
	lf, lok := value.AsNumber(l)
	rf, rok := value.AsNumber(r)
	if !lok || !rok {
		return nil
	}
	switch op {
	case OpAdd:
		return lf + rf
	case OpSub:
		return lf - rf
	case OpMul:
		return lf * rf
	case OpDiv:
		if rf == 0 {
			return nil
		}
		return lf / rf
	case OpMod:
		if int64(rf) == 0 {
			return nil
		}
		return float64(int64(lf) % int64(rf))
	}
	return nil
}

func evalConcat(l, r any) any {
	if value.IsMissing(l) || value.IsMissing(r) {
		return value.Missing
	}
	ls, lok := l.(string)
	rs, rok := r.(string)
	if !lok || !rok {
		return nil
	}
	return ls + rs
}

// likeCache memoizes compiled LIKE patterns.
var likeCache sync.Map // string -> *regexp.Regexp

func evalLike(l, r any) (any, error) {
	if value.IsMissing(l) || value.IsMissing(r) {
		return value.Missing, nil
	}
	s, sok := l.(string)
	pat, pok := r.(string)
	if !sok || !pok {
		return nil, nil
	}
	re, err := likeRegexp(pat)
	if err != nil {
		return nil, err
	}
	return re.MatchString(s), nil
}

func likeRegexp(pat string) (*regexp.Regexp, error) {
	if re, ok := likeCache.Load(pat); ok {
		return re.(*regexp.Regexp), nil
	}
	var b strings.Builder
	b.WriteString("(?s)^")
	for i := 0; i < len(pat); i++ {
		switch c := pat[i]; c {
		case '%':
			b.WriteString(".*")
		case '_':
			b.WriteString(".")
		case '\\':
			if i+1 < len(pat) {
				b.WriteString(regexp.QuoteMeta(string(pat[i+1])))
				i++
			}
		default:
			b.WriteString(regexp.QuoteMeta(string(c)))
		}
	}
	b.WriteString("$")
	re, err := regexp.Compile(b.String())
	if err != nil {
		return nil, fmt.Errorf("n1ql: bad LIKE pattern %q: %w", pat, err)
	}
	likeCache.Store(pat, re)
	return re, nil
}

func evalIn(l, r any) any {
	if value.IsMissing(l) || value.IsMissing(r) {
		return value.Missing
	}
	arr, ok := r.([]any)
	if !ok {
		return nil
	}
	sawNull := false
	for _, el := range arr {
		if el == nil || value.IsMissing(el) {
			sawNull = true
			continue
		}
		if l != nil && value.Compare(l, el) == 0 {
			return true
		}
	}
	if l == nil || sawNull {
		return nil
	}
	return false
}

func (e *Unary) eval(ctx *Context) (any, error) {
	v, err := e.Operand.eval(ctx)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case OpNot:
		switch truthState(v) {
		case stateTrue:
			return false, nil
		case stateFalse:
			return true, nil
		case stateMissing:
			return value.Missing, nil
		default:
			return nil, nil
		}
	case OpNeg:
		if value.IsMissing(v) {
			return value.Missing, nil
		}
		f, ok := value.AsNumber(v)
		if !ok {
			return nil, nil
		}
		return -f, nil
	}
	return nil, fmt.Errorf("n1ql: unknown unary operator %d", e.Op)
}

func (e *Is) eval(ctx *Context) (any, error) {
	v, err := e.Operand.eval(ctx)
	if err != nil {
		return nil, err
	}
	missing := value.IsMissing(v)
	null := !missing && v == nil
	switch e.Kind {
	case IsNull:
		if missing {
			return value.Missing, nil
		}
		return null, nil
	case IsNotNull:
		if missing {
			return value.Missing, nil
		}
		return !null, nil
	case IsMissingP:
		return missing, nil
	case IsNotMissing:
		return !missing, nil
	case IsValued:
		return !missing && !null, nil
	case IsNotValued:
		return missing || null, nil
	}
	return nil, fmt.Errorf("n1ql: unknown IS kind %d", e.Kind)
}

func (e *Between) eval(ctx *Context) (any, error) {
	v, err := e.Operand.eval(ctx)
	if err != nil {
		return nil, err
	}
	lo, err := e.Lo.eval(ctx)
	if err != nil {
		return nil, err
	}
	hi, err := e.Hi.eval(ctx)
	if err != nil {
		return nil, err
	}
	ge := evalCompare(OpGe, v, lo)
	le := evalCompare(OpLe, v, hi)
	res, err := evalAnd(&Literal{Val: ge}, &Literal{Val: le}, ctx)
	if err != nil {
		return nil, err
	}
	if e.Not {
		switch truthState(res) {
		case stateTrue:
			return false, nil
		case stateFalse:
			return true, nil
		}
	}
	return res, nil
}

func (e *CollPredicate) eval(ctx *Context) (any, error) {
	coll, err := e.Coll.eval(ctx)
	if err != nil {
		return nil, err
	}
	arr, ok := coll.([]any)
	if !ok {
		if value.IsMissing(coll) {
			return value.Missing, nil
		}
		return nil, nil
	}
	if e.Kind == CollAny {
		for _, el := range arr {
			v, err := e.Satisfies.eval(ctx.Child(e.Var, el))
			if err != nil {
				return nil, err
			}
			if v == true {
				return true, nil
			}
		}
		return false, nil
	}
	// EVERY: true only if all satisfy (vacuously true on empty? N1QL
	// says EVERY over empty array is TRUE).
	for _, el := range arr {
		v, err := e.Satisfies.eval(ctx.Child(e.Var, el))
		if err != nil {
			return nil, err
		}
		if v != true {
			return false, nil
		}
	}
	return true, nil
}

func (e *ArrayComprehension) eval(ctx *Context) (any, error) {
	coll, err := e.Coll.eval(ctx)
	if err != nil {
		return nil, err
	}
	arr, ok := coll.([]any)
	if !ok {
		if value.IsMissing(coll) {
			return value.Missing, nil
		}
		return nil, nil
	}
	out := make([]any, 0, len(arr))
	for _, el := range arr {
		child := ctx.Child(e.Var, el)
		if e.When != nil {
			w, err := e.When.eval(child)
			if err != nil {
				return nil, err
			}
			if w != true {
				continue
			}
		}
		v, err := e.Mapper.eval(child)
		if err != nil {
			return nil, err
		}
		if value.IsMissing(v) {
			v = nil
		}
		out = append(out, v)
	}
	return out, nil
}

func (e *CaseExpr) eval(ctx *Context) (any, error) {
	if e.Operand != nil {
		op, err := e.Operand.eval(ctx)
		if err != nil {
			return nil, err
		}
		for i := range e.Whens {
			w, err := e.Whens[i].eval(ctx)
			if err != nil {
				return nil, err
			}
			if !value.IsMissing(op) && !value.IsMissing(w) && value.Compare(op, w) == 0 {
				return e.Thens[i].eval(ctx)
			}
		}
	} else {
		for i := range e.Whens {
			w, err := e.Whens[i].eval(ctx)
			if err != nil {
				return nil, err
			}
			if w == true {
				return e.Thens[i].eval(ctx)
			}
		}
	}
	if e.Else != nil {
		return e.Else.eval(ctx)
	}
	return nil, nil
}

func (e *FuncCall) eval(ctx *Context) (any, error) {
	if IsAggregate(e.Name) {
		return nil, fmt.Errorf("n1ql: aggregate %s used outside GROUP BY context", e.Name)
	}
	fn, ok := builtins[e.Name]
	if !ok {
		return nil, fmt.Errorf("n1ql: unknown function %s", e.Name)
	}
	args := make([]any, len(e.Args))
	for i, a := range e.Args {
		v, err := a.eval(ctx)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return fn(args)
}
