// Package n1ql implements the N1QL query language (paper §3.2): lexer,
// abstract syntax tree, recursive-descent parser, and expression
// evaluator. N1QL is "the first NoSQL query language to leverage the
// flexibility of JSON with nearly the full expressive power of SQL";
// this package covers the language surface the paper describes —
// SELECT with USE KEYS, key joins, NEST and UNNEST, DML, index DDL, and
// the JSON-aware expression language with MISSING/NULL propagation.
//
// The planner and executor packages consume the ASTs produced here; the
// view and GSI engines reuse the expression sub-language for index key
// and filter definitions.
package n1ql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString
	tkOp    // operators and punctuation
	tkParam // $name or $1
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep their case
	pos  int
}

func (t token) String() string {
	if t.kind == tkEOF {
		return "end of statement"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords recognized by the lexer. Identifiers matching these
// (case-insensitively) become keyword tokens; backtick quoting turns
// any of them back into a plain identifier.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "RAW": true, "FROM": true, "AS": true,
	"USE": true, "KEYS": true, "ON": true, "JOIN": true, "INNER": true,
	"LEFT": true, "OUTER": true, "NEST": true, "UNNEST": true,
	"WHERE": true, "GROUP": true, "BY": true, "HAVING": true,
	"ORDER": true, "ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"INSERT": true, "INTO": true, "KEY": true, "VALUE": true, "VALUES": true,
	"UPSERT": true, "UPDATE": true, "SET": true, "UNSET": true,
	"DELETE": true, "RETURNING": true,
	"CREATE": true, "DROP": true, "INDEX": true, "PRIMARY": true,
	"USING": true, "GSI": true, "VIEW": true, "WITH": true,
	"EXPLAIN": true, "AND": true, "OR": true, "NOT": true,
	"IS": true, "NULL": true, "MISSING": true, "VALUED": true,
	"TRUE": true, "FALSE": true, "LIKE": true, "IN": true, "BETWEEN": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"ANY": true, "EVERY": true, "SATISFIES": true, "ARRAY": true, "FOR": true,
	"EXISTS": true, "ALL": true,
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes src. It returns a descriptive error with the offending
// position on invalid input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tkEOF, pos: l.pos})
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '`':
			text, err := l.quotedIdent()
			if err != nil {
				return nil, err
			}
			l.tokens = append(l.tokens, token{kind: tkIdent, text: text, pos: start})
		case c == '\'' || c == '"':
			text, err := l.stringLit(c)
			if err != nil {
				return nil, err
			}
			l.tokens = append(l.tokens, token{kind: tkString, text: text, pos: start})
		case c == '$':
			l.pos++
			name := l.ident()
			if name == "" {
				return nil, fmt.Errorf("n1ql: bare $ at position %d", start)
			}
			l.tokens = append(l.tokens, token{kind: tkParam, text: name, pos: start})
		case c >= '0' && c <= '9':
			l.tokens = append(l.tokens, token{kind: tkNumber, text: l.number(), pos: start})
		case isIdentStart(rune(c)):
			word := l.ident()
			up := strings.ToUpper(word)
			if keywords[up] {
				l.tokens = append(l.tokens, token{kind: tkKeyword, text: up, pos: start})
			} else {
				l.tokens = append(l.tokens, token{kind: tkIdent, text: word, pos: start})
			}
		default:
			op, err := l.operator()
			if err != nil {
				return nil, err
			}
			l.tokens = append(l.tokens, token{kind: tkOp, text: op, pos: start})
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments and /* block comments */
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*' {
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) ident() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) number() string {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	return l.src[start:l.pos]
}

func (l *lexer) stringLit(quote byte) (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			// Doubled quote = escaped quote (SQL style).
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				b.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return "", fmt.Errorf("n1ql: unterminated escape at %d", l.pos)
			}
			esc := l.src[l.pos+1]
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '\'', '"', '`':
				b.WriteByte(esc)
			default:
				b.WriteByte(esc)
			}
			l.pos += 2
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return "", fmt.Errorf("n1ql: unterminated string starting at %d", start)
}

func (l *lexer) quotedIdent() (string, error) {
	start := l.pos
	l.pos++ // opening backtick
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '`' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '`' {
				b.WriteByte('`')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("n1ql: unterminated identifier starting at %d", start)
}

// twoCharOps lists multi-character operators, longest first.
var twoCharOps = []string{"<=", ">=", "!=", "<>", "==", "||"}

func (l *lexer) operator() (string, error) {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		for _, op := range twoCharOps {
			if two == op {
				l.pos += 2
				return op, nil
			}
		}
	}
	c := l.src[l.pos]
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', '[', ']', '{', '}', ',', '.', ':', ';', '?':
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("n1ql: unexpected character %q at position %d", c, l.pos)
}
