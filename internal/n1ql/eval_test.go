package n1ql

import (
	"testing"

	"couchgo/internal/value"
)

// evalStr evaluates src against a standard test document.
func evalStr(t *testing.T, src string, ctx *Context) any {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	v, err := Eval(e, ctx)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func testCtx() *Context {
	doc := value.MustParse(`{
		"name": "Dipti",
		"email": "dipti@couchbase.com",
		"age": 30,
		"vip": true,
		"nothing": null,
		"categories": ["db", "nosql", "cloud"],
		"orders": [
			{"id": "o1", "total": 10},
			{"id": "o2", "total": 25}
		],
		"address": {"city": "SF", "zip": "94105"}
	}`)
	ctx := NewContext("p", doc, Meta{ID: "borkar123", CAS: 42, Seqno: 7})
	ctx.Params = map[string]any{"1": "user42", "min": 18.0}
	return ctx
}

func TestEvalIdentifiersAndPaths(t *testing.T) {
	ctx := testCtx()
	cases := map[string]any{
		"name":            "Dipti",
		"p.name":          "Dipti",
		"address.city":    "SF",
		"p.address.zip":   "94105",
		"categories[0]":   "db",
		"categories[-1]":  "cloud",
		"orders[1].total": 25.0,
		"orders[1].id":    "o2",
		"nothing":         nil,
	}
	for src, want := range cases {
		got := evalStr(t, src, ctx)
		if value.Compare(got, want) != 0 || value.IsMissing(got) != value.IsMissing(want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	for _, src := range []string{"ghost", "p.ghost", "address.ghost", "categories[99]", "name.sub"} {
		if !value.IsMissing(evalStr(t, src, ctx)) {
			t.Errorf("%s should be MISSING", src)
		}
	}
}

func TestEvalMeta(t *testing.T) {
	ctx := testCtx()
	if got := evalStr(t, "meta().id", ctx); got != "borkar123" {
		t.Errorf("meta().id = %v", got)
	}
	if got := evalStr(t, "meta(p).cas", ctx); got != 42.0 {
		t.Errorf("meta(p).cas = %v", got)
	}
	if !value.IsMissing(evalStr(t, "meta(zz).id", ctx)) {
		t.Error("meta of unknown alias should be MISSING")
	}
}

func TestEvalParams(t *testing.T) {
	ctx := testCtx()
	if got := evalStr(t, "$1", ctx); got != "user42" {
		t.Errorf("$1 = %v", got)
	}
	if got := evalStr(t, "age >= $min", ctx); got != true {
		t.Errorf("age >= $min = %v", got)
	}
	e, _ := ParseExpr("$nope")
	if _, err := Eval(e, ctx); err == nil {
		t.Error("missing parameter should error")
	}
}

func TestEvalComparisonSemantics(t *testing.T) {
	ctx := testCtx()
	cases := map[string]any{
		"age = 30":       true,
		"age != 30":      false,
		"age < 31":       true,
		"age <= 30":      true,
		"age > 30":       false,
		"name = 'Dipti'": true,
		"name < 'Z'":     true,
		// NULL and MISSING propagation.
		"nothing = 1":       nil,
		"ghost = 1":         value.Missing,
		"ghost = ghost":     value.Missing,
		"nothing = nothing": nil,
		// Cross-type comparison via collation.
		"age < 'str'": true, // numbers sort before strings
	}
	for src, want := range cases {
		got := evalStr(t, src, ctx)
		if value.IsMissing(want) != value.IsMissing(got) || value.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalLogicSemantics(t *testing.T) {
	ctx := testCtx()
	cases := map[string]any{
		"TRUE AND TRUE":    true,
		"TRUE AND FALSE":   false,
		"FALSE AND ghost":  false, // FALSE dominates MISSING
		"ghost AND TRUE":   value.Missing,
		"nothing AND TRUE": nil,
		"TRUE OR ghost":    true, // TRUE dominates
		"ghost OR FALSE":   value.Missing,
		"nothing OR FALSE": nil,
		"FALSE OR FALSE":   false,
		"NOT TRUE":         false,
		"NOT FALSE":        true,
		"NOT ghost":        value.Missing,
		"NOT nothing":      nil,
		"NOT 42":           nil, // non-boolean behaves as NULL
	}
	for src, want := range cases {
		got := evalStr(t, src, ctx)
		if value.IsMissing(want) != value.IsMissing(got) || value.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalArithmetic(t *testing.T) {
	ctx := testCtx()
	cases := map[string]any{
		"1 + 2":        3.0,
		"age * 2":      60.0,
		"10 / 4":       2.5,
		"10 / 0":       nil,
		"10 % 3":       1.0,
		"10 % 0":       nil,
		"-age":         -30.0,
		"age + 'x'":    nil, // non-number -> NULL
		"ghost + 1":    value.Missing,
		"'a' || 'b'":   "ab",
		"'a' || 1":     nil,
		"ghost || 'b'": value.Missing,
	}
	for src, want := range cases {
		got := evalStr(t, src, ctx)
		if value.IsMissing(want) != value.IsMissing(got) || value.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalLike(t *testing.T) {
	ctx := testCtx()
	cases := map[string]any{
		"name LIKE 'D%'":               true,
		"name LIKE '%ipti'":            true,
		"name LIKE 'D_pti'":            true,
		"name LIKE 'd%'":               false,
		"email LIKE '%@couchbase.com'": true,
		"name NOT LIKE 'Z%'":           true,
		"age LIKE 'x'":                 nil,
		"ghost LIKE 'x'":               value.Missing,
		// Regex metacharacters in the pattern are literal.
		"email LIKE '%couchbase.com'": true,
		"name LIKE 'D.pti'":           false,
	}
	for src, want := range cases {
		got := evalStr(t, src, ctx)
		if value.IsMissing(want) != value.IsMissing(got) || value.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalInBetween(t *testing.T) {
	ctx := testCtx()
	cases := map[string]any{
		"age IN [10, 30, 50]":       true,
		"age IN [1, 2]":             false,
		"age IN [1, NULL]":          nil, // unknown membership with NULL present
		"'db' IN categories":        true,
		"age IN 42":                 nil, // not an array
		"ghost IN [1]":              value.Missing,
		"age BETWEEN 18 AND 65":     true,
		"age BETWEEN 31 AND 65":     false,
		"age NOT BETWEEN 31 AND 65": true,
	}
	for src, want := range cases {
		got := evalStr(t, src, ctx)
		if value.IsMissing(want) != value.IsMissing(got) || value.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalIsPredicates(t *testing.T) {
	ctx := testCtx()
	cases := map[string]any{
		"nothing IS NULL":     true,
		"name IS NULL":        false,
		"ghost IS NULL":       value.Missing,
		"nothing IS NOT NULL": false,
		"ghost IS MISSING":    true,
		"name IS MISSING":     false,
		"nothing IS MISSING":  false,
		"name IS NOT MISSING": true,
		"name IS VALUED":      true,
		"nothing IS VALUED":   false,
		"ghost IS VALUED":     false,
		"ghost IS NOT VALUED": true,
	}
	for src, want := range cases {
		got := evalStr(t, src, ctx)
		if value.IsMissing(want) != value.IsMissing(got) || value.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalCollectionPredicates(t *testing.T) {
	ctx := testCtx()
	cases := map[string]any{
		"ANY c IN categories SATISFIES c = 'nosql' END":     true,
		"ANY c IN categories SATISFIES c = 'zzz' END":       false,
		"EVERY c IN categories SATISFIES LENGTH(c) > 1 END": true,
		"EVERY c IN categories SATISFIES c = 'db' END":      false,
		"ANY o IN orders SATISFIES o.total > 20 END":        true,
		"EVERY o IN orders SATISFIES o.total > 5 END":       true,
		"ANY x IN ghost SATISFIES TRUE END":                 value.Missing,
		"ANY x IN age SATISFIES TRUE END":                   nil,
		"EVERY x IN [] SATISFIES FALSE END":                 true, // vacuous
		"ANY x IN [] SATISFIES TRUE END":                    false,
	}
	for src, want := range cases {
		got := evalStr(t, src, ctx)
		if value.IsMissing(want) != value.IsMissing(got) || value.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalArrayComprehension(t *testing.T) {
	ctx := testCtx()
	got := evalStr(t, "ARRAY o.id FOR o IN orders END", ctx)
	want := []any{"o1", "o2"}
	if value.Compare(got, want) != 0 {
		t.Errorf("comprehension = %v", got)
	}
	got = evalStr(t, "ARRAY o.id FOR o IN orders WHEN o.total > 20 END", ctx)
	if value.Compare(got, []any{"o2"}) != 0 {
		t.Errorf("filtered comprehension = %v", got)
	}
	got = evalStr(t, "ARRAY x FOR x IN ghost END", ctx)
	if !value.IsMissing(got) {
		t.Errorf("comprehension over missing = %v", got)
	}
}

func TestEvalCase(t *testing.T) {
	ctx := testCtx()
	cases := map[string]any{
		"CASE WHEN age > 40 THEN 'old' WHEN age > 20 THEN 'mid' ELSE 'young' END": "mid",
		"CASE WHEN age > 40 THEN 'old' END":                                       nil,
		"CASE name WHEN 'Dipti' THEN 1 WHEN 'Bob' THEN 2 ELSE 0 END":              1.0,
		"CASE name WHEN 'Bob' THEN 2 ELSE 0 END":                                  0.0,
	}
	for src, want := range cases {
		got := evalStr(t, src, ctx)
		if value.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalConstructors(t *testing.T) {
	ctx := testCtx()
	got := evalStr(t, "[name, age, ghost]", ctx)
	want := []any{"Dipti", 30.0, nil} // MISSING -> NULL inside arrays
	if value.Compare(got, want) != 0 {
		t.Errorf("array = %v", got)
	}
	got = evalStr(t, "{'n': name, 'g': ghost, 'a': age}", ctx)
	obj := got.(map[string]any)
	if obj["n"] != "Dipti" || obj["a"] != 30.0 {
		t.Errorf("object = %v", obj)
	}
	if _, ok := obj["g"]; ok {
		t.Error("MISSING field should be omitted from objects")
	}
}

func TestEvalFunctions(t *testing.T) {
	ctx := testCtx()
	cases := map[string]any{
		"UPPER(name)":                          "DIPTI",
		"LOWER('ABC')":                         "abc",
		"LENGTH(name)":                         5.0,
		"SUBSTR(name, 1)":                      "ipti",
		"SUBSTR(name, 0, 3)":                   "Dip",
		"SUBSTR(name, -2)":                     "ti",
		"CONTAINS(email, 'couch')":             true,
		"POSITION(email, '@')":                 5.0,
		"TRIM('  x  ')":                        "x",
		"REPLACE('aaa', 'a', 'b')":             "bbb",
		"ABS(-5)":                              5.0,
		"CEIL(1.2)":                            2.0,
		"FLOOR(1.8)":                           1.0,
		"ROUND(1.5)":                           2.0,
		"SQRT(16)":                             4.0,
		"POWER(2, 10)":                         1024.0,
		"ARRAY_LENGTH(categories)":             3.0,
		"ARRAY_CONTAINS(categories, 'db')":     true,
		"ARRAY_MIN([3, 1, 2])":                 1.0,
		"ARRAY_MAX([3, 1, 2])":                 3.0,
		"TYPE(age)":                            "number",
		"TYPE(ghost)":                          "missing",
		"TO_STRING(42)":                        "42",
		"TO_NUMBER('3.5')":                     3.5,
		"TO_NUMBER(TRUE)":                      1.0,
		"IFMISSING(ghost, 'dflt')":             "dflt",
		"IFMISSING(name, 'dflt')":              "Dipti",
		"IFNULL(nothing, 'dflt')":              "dflt",
		"IFMISSINGORNULL(ghost, nothing, 'x')": "x",
		"COALESCE(nothing, age)":               30.0,
		"GREATEST(1, 9, 4)":                    9.0,
		"LEAST(5, 2, 8)":                       2.0,
		"UPPER(ghost)":                         value.Missing,
		"UPPER(nothing)":                       nil,
		"UPPER(42)":                            nil,
	}
	for src, want := range cases {
		got := evalStr(t, src, ctx)
		if value.IsMissing(want) != value.IsMissing(got) || value.Compare(got, want) != 0 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalFunctionErrors(t *testing.T) {
	ctx := testCtx()
	for _, src := range []string{"NO_SUCH_FN(1)", "UPPER()", "SUBSTR('x')"} {
		e, err := ParseExpr(src)
		if err != nil {
			continue
		}
		if _, err := Eval(e, ctx); err == nil {
			t.Errorf("Eval(%q) should error", src)
		}
	}
	// Aggregates outside grouping context error.
	e, _ := ParseExpr("SUM(age)")
	if _, err := Eval(e, ctx); err == nil {
		t.Error("aggregate outside GROUP BY should error")
	}
}

func TestEvalSplit(t *testing.T) {
	ctx := testCtx()
	got := evalStr(t, "SPLIT('a,b,c', ',')", ctx)
	if value.Compare(got, []any{"a", "b", "c"}) != 0 {
		t.Errorf("split = %v", got)
	}
	got = evalStr(t, "SPLIT('a b  c')", ctx)
	if value.Compare(got, []any{"a", "b", "c"}) != 0 {
		t.Errorf("split fields = %v", got)
	}
}

func TestEvalObjectFunctions(t *testing.T) {
	ctx := testCtx()
	got := evalStr(t, "OBJECT_NAMES(address)", ctx)
	if value.Compare(got, []any{"city", "zip"}) != 0 {
		t.Errorf("object_names = %v", got)
	}
	got = evalStr(t, "OBJECT_VALUES(address)", ctx)
	if value.Compare(got, []any{"SF", "94105"}) != 0 {
		t.Errorf("object_values = %v", got)
	}
}

func TestAggregators(t *testing.T) {
	mk := func(name string, distinct bool) *Aggregator {
		return NewAggregator(&FuncCall{Name: name, Distinct: distinct})
	}
	sum := mk("SUM", false)
	for _, v := range []any{1.0, 2.0, 3.0, nil, value.Missing} {
		sum.Add(v)
	}
	if sum.Result() != 6.0 {
		t.Errorf("SUM = %v", sum.Result())
	}
	cnt := mk("COUNT", false)
	for _, v := range []any{1.0, "x", nil, value.Missing, true} {
		cnt.Add(v)
	}
	if cnt.Result() != 3.0 {
		t.Errorf("COUNT = %v (nulls/missing must not count)", cnt.Result())
	}
	avg := mk("AVG", false)
	avg.Add(2.0)
	avg.Add(4.0)
	if avg.Result() != 3.0 {
		t.Errorf("AVG = %v", avg.Result())
	}
	if mk("AVG", false).Result() != nil {
		t.Error("empty AVG should be NULL")
	}
	if mk("SUM", false).Result() != nil {
		t.Error("empty SUM should be NULL")
	}
	if mk("COUNT", false).Result() != 0.0 {
		t.Error("empty COUNT should be 0")
	}
	mn, mx := mk("MIN", false), mk("MAX", false)
	for _, v := range []any{3.0, 1.0, 2.0} {
		mn.Add(v)
		mx.Add(v)
	}
	if mn.Result() != 1.0 || mx.Result() != 3.0 {
		t.Errorf("MIN/MAX = %v/%v", mn.Result(), mx.Result())
	}
	dc := mk("COUNT", true)
	for _, v := range []any{1.0, 1.0, 2.0, 2.0, 3.0} {
		dc.Add(v)
	}
	if dc.Result() != 3.0 {
		t.Errorf("COUNT(DISTINCT) = %v", dc.Result())
	}
	agg := mk("ARRAY_AGG", false)
	agg.Add("a")
	agg.Add("b")
	if value.Compare(agg.Result(), []any{"a", "b"}) != 0 {
		t.Errorf("ARRAY_AGG = %v", agg.Result())
	}
}

func TestHasAggregate(t *testing.T) {
	e, _ := ParseExpr("COUNT(*) + 1")
	if !HasAggregate(e) {
		t.Error("COUNT(*) + 1 has aggregate")
	}
	e, _ = ParseExpr("UPPER(name)")
	if HasAggregate(e) {
		t.Error("UPPER has no aggregate")
	}
	e, _ = ParseExpr("CASE WHEN SUM(x) > 1 THEN 1 END")
	if !HasAggregate(e) {
		t.Error("aggregate inside CASE")
	}
}

func TestContextChildDoesNotMutateParent(t *testing.T) {
	ctx := testCtx()
	child := ctx.Child("v", "bound")
	if _, ok := ctx.Bindings["v"]; ok {
		t.Error("Child mutated parent bindings")
	}
	if child.Bindings["v"] != "bound" {
		t.Error("Child binding missing")
	}
	if child.Bindings["p"] == nil {
		t.Error("Child lost parent binding")
	}
}

func TestEvalSelfAndBind(t *testing.T) {
	ctx := testCtx()
	v := evalStr(t, "self", ctx)
	if value.Field(v, "name") != "Dipti" {
		t.Error("self should be the whole document")
	}
	ctx.Bind("extra", 1.0)
	if evalStr(t, "extra", ctx) != 1.0 {
		t.Error("Bind failed")
	}
}
