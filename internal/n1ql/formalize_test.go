package n1ql

import (
	"testing"

	"couchgo/internal/value"
)

func TestFormalizeCanonicalForms(t *testing.T) {
	// All of these denote the same property for alias "p".
	cases := map[string]string{
		"email":          "self.email",
		"p.email":        "self.email",
		"p.address.city": "self.address.city",
		"address.city":   "self.address.city",
		"p":              "self",
		"meta().id":      "meta().id",
		"meta(p).id":     "meta().id",
		"meta(q).id":     "meta(q).id", // other alias untouched
		"age > 21":       "(self.age > 21)",
		"p.age > $min":   "(self.age > $min)",
		"UPPER(name)":    "UPPER(self.name)",
		"ANY c IN categories SATISFIES c = 'x' END": "ANY c IN self.categories SATISFIES (c = \"x\") END",
		"ARRAY s.order_id FOR s IN history END":     "ARRAY s.order_id FOR s IN self.history END",
		"[a, b]":                                    "[self.a, self.b]",
		"CASE WHEN a THEN b END":                    "CASE WHEN self.a THEN self.b END",
		"x BETWEEN lo AND hi":                       "(self.x BETWEEN self.lo AND self.hi)",
		"items[0].price":                            "self.items[0].price",
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		got := Formalize(e, "p").String()
		if got != want {
			t.Errorf("Formalize(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestFormalizeEquivalenceIsTheMatchKey(t *testing.T) {
	// Index defined on keyspace "Profile" with expr "email"; query with
	// alias "p" uses "p.email". They must formalize identically.
	idx, _ := ParseExpr("email")
	q, _ := ParseExpr("p.email")
	if Formalize(idx, "Profile").String() != Formalize(q, "p").String() {
		t.Error("index/query expression match failed")
	}
}

func TestFormalizedExprStillEvaluates(t *testing.T) {
	doc := value.MustParse(`{"email": "a@x.com", "tags": ["t1"]}`)
	ctx := NewContext("self", doc, Meta{ID: "d1"})
	for src, want := range map[string]any{
		"p.email":                              "a@x.com",
		"meta(p).id":                           "d1",
		"ANY t IN tags SATISFIES t = 't1' END": true,
	} {
		e, _ := ParseExpr(src)
		f := Formalize(e, "p")
		got, err := Eval(f, ctx)
		if err != nil || value.Compare(got, want) != 0 {
			t.Errorf("eval formalized %q = %v (%v), want %v", src, got, err, want)
		}
	}
}

func TestConjunctsOf(t *testing.T) {
	e, _ := ParseExpr("a = 1 AND b = 2 AND (c = 3 OR d = 4)")
	cj := ConjunctsOf(e)
	if len(cj) != 3 {
		t.Fatalf("conjuncts: %d", len(cj))
	}
	if ConjunctsOf(nil) != nil {
		t.Error("nil predicate has no conjuncts")
	}
	single, _ := ParseExpr("a = 1")
	if len(ConjunctsOf(single)) != 1 {
		t.Error("single conjunct")
	}
}

func TestIsConstant(t *testing.T) {
	cases := map[string]bool{
		"1 + 2":       true,
		"$p":          true,
		"'x' || 'y'":  true,
		"[1, 2]":      true,
		"a":           false,
		"meta().id":   false,
		"[1, a]":      false,
		"UPPER('x')":  true,
		"UPPER(name)": false,
	}
	for src, want := range cases {
		e, _ := ParseExpr(src)
		if got := IsConstant(e); got != want {
			t.Errorf("IsConstant(%q) = %v", src, got)
		}
	}
}
