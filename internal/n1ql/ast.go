package n1ql

import (
	"strings"

	"couchgo/internal/value"
)

// Expr is a N1QL expression. Expressions evaluate against a Context
// (row bindings + parameters) and render back to source with String,
// which the planner uses for index matching (expressions are compared
// by their canonical text).
type Expr interface {
	String() string
	eval(ctx *Context) (any, error)
}

// --- Expression nodes ---

// Literal is a JSON constant.
type Literal struct{ Val any }

func (e *Literal) String() string {
	if e.Val == nil {
		return "NULL"
	}
	if value.IsMissing(e.Val) {
		return "MISSING"
	}
	return string(value.Marshal(e.Val))
}

// Ident is a bare identifier: either a keyspace alias or a top-level
// field of the default keyspace's document.
type Ident struct{ Name string }

func (e *Ident) String() string { return quoteIdent(e.Name) }

// Self is the whole document of the default binding (`SELECT RAW self`
// style; also used internally for primary index terms).
type Self struct{}

func (e *Self) String() string { return "self" }

// Field is dotted access: Recv.Name.
type Field struct {
	Recv Expr
	Name string
}

func (e *Field) String() string { return recvString(e.Recv) + "." + quoteIdent(e.Name) }

// Element is array subscript access: Recv[Index].
type Element struct {
	Recv  Expr
	Index Expr
}

func (e *Element) String() string { return recvString(e.Recv) + "[" + e.Index.String() + "]" }

// recvString prints a postfix receiver, parenthesizing forms that
// would re-parse with the postfix binding tighter than intended (a
// leading minus: `-99[i]` parses as `-(99[i])`, not `(-99)[i]`).
func recvString(e Expr) string {
	s := e.String()
	if strings.HasPrefix(s, "-") {
		return "(" + s + ")"
	}
	return s
}

// ArrayConstruct is an array literal [e1, e2, ...].
type ArrayConstruct struct{ Elems []Expr }

func (e *ArrayConstruct) String() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = el.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// ObjectConstruct is an object literal {"k": e, ...}.
type ObjectConstruct struct {
	Names []string
	Vals  []Expr
}

func (e *ObjectConstruct) String() string {
	parts := make([]string, len(e.Names))
	for i := range e.Names {
		parts[i] = "\"" + e.Names[i] + "\": " + e.Vals[i].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Param is a positional ($1) or named ($key) query parameter.
type Param struct{ Name string }

func (e *Param) String() string { return "$" + e.Name }

// BinOp enumerates binary operators.
type BinOp int

const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
	OpAnd
	OpOr
	OpLike
	OpIn
)

var binOpText = map[BinOp]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpConcat: "||", OpAnd: "AND", OpOr: "OR", OpLike: "LIKE", OpIn: "IN",
}

// Binary applies Op to LHS and RHS.
type Binary struct {
	Op       BinOp
	LHS, RHS Expr
}

func (e *Binary) String() string {
	return "(" + e.LHS.String() + " " + binOpText[e.Op] + " " + e.RHS.String() + ")"
}

// UnOp enumerates unary operators.
type UnOp int

const (
	OpNot UnOp = iota
	OpNeg
)

// Unary applies Op to Operand.
type Unary struct {
	Op      UnOp
	Operand Expr
}

func (e *Unary) String() string {
	if e.Op == OpNot {
		return "(NOT " + e.Operand.String() + ")"
	}
	return "(-" + e.Operand.String() + ")"
}

// IsKind enumerates IS predicates.
type IsKind int

const (
	IsNull IsKind = iota
	IsNotNull
	IsMissingP
	IsNotMissing
	IsValued
	IsNotValued
)

var isText = map[IsKind]string{
	IsNull: "IS NULL", IsNotNull: "IS NOT NULL",
	IsMissingP: "IS MISSING", IsNotMissing: "IS NOT MISSING",
	IsValued: "IS VALUED", IsNotValued: "IS NOT VALUED",
}

// Is tests the nullness/missingness of Operand.
type Is struct {
	Kind    IsKind
	Operand Expr
}

func (e *Is) String() string { return "(" + e.Operand.String() + " " + isText[e.Kind] + ")" }

// Between is lo <= e <= hi (with NOT variant).
type Between struct {
	Operand, Lo, Hi Expr
	Not             bool
}

func (e *Between) String() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return "(" + e.Operand.String() + " " + not + "BETWEEN " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

// FuncCall invokes a built-in function or aggregate.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Distinct bool // COUNT(DISTINCT x)
	Star     bool // COUNT(*)
}

func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(parts, ", ") + ")"
}

// CollKind distinguishes ANY / EVERY collection predicates.
type CollKind int

const (
	CollAny CollKind = iota
	CollEvery
)

// CollPredicate is ANY|EVERY var IN coll SATISFIES pred END — the array
// predicate form that array indexes (§6.1.2) accelerate.
type CollPredicate struct {
	Kind      CollKind
	Var       string
	Coll      Expr
	Satisfies Expr
}

func (e *CollPredicate) String() string {
	k := "ANY"
	if e.Kind == CollEvery {
		k = "EVERY"
	}
	return k + " " + e.Var + " IN " + e.Coll.String() + " SATISFIES " + e.Satisfies.String() + " END"
}

// ArrayComprehension is ARRAY expr FOR var IN coll [WHEN cond] END — the
// form the paper's NEST example uses ("ARRAY s.order_id FOR s IN
// PO.shipped_order_history END").
type ArrayComprehension struct {
	Mapper Expr
	Var    string
	Coll   Expr
	When   Expr // nil when absent
}

func (e *ArrayComprehension) String() string {
	s := "ARRAY " + e.Mapper.String() + " FOR " + e.Var + " IN " + e.Coll.String()
	if e.When != nil {
		s += " WHEN " + e.When.String()
	}
	return s + " END"
}

// CaseExpr is a searched or simple CASE.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []Expr
	Thens   []Expr
	Else    Expr // nil when absent
}

func (e *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	if e.Operand != nil {
		b.WriteString(" " + e.Operand.String())
	}
	for i := range e.Whens {
		b.WriteString(" WHEN " + e.Whens[i].String() + " THEN " + e.Thens[i].String())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// MetaExpr is META() or META(alias): document metadata. Its fields
// (id, cas) are reached via Field access on the result.
type MetaExpr struct{ Alias string }

func (e *MetaExpr) String() string {
	if e.Alias == "" {
		return "meta()"
	}
	return "meta(" + quoteIdent(e.Alias) + ")"
}

func quoteIdent(name string) string {
	if name == "" {
		return "``"
	}
	for i, r := range name {
		if !(isIdentPart(r) || (i == 0 && isIdentStart(r))) {
			return "`" + strings.ReplaceAll(name, "`", "``") + "`"
		}
	}
	if keywords[strings.ToUpper(name)] {
		return "`" + name + "`"
	}
	return name
}

// --- Statements ---

// Statement is any parsed N1QL statement.
type Statement interface{ stmt() }

// ResultTerm is one projection in a SELECT list.
type ResultTerm struct {
	Expr  Expr   // nil for plain *
	Alias string // "" = derive from expression
	Star  bool   // * or alias.* (Expr holds the alias expr for alias.*)
}

// JoinKind distinguishes join/nest operators.
type JoinKind int

const (
	JoinInner JoinKind = iota
	JoinLeftOuter
)

// JoinTerm is JOIN/NEST keyspace ON [KEYS] expr. Per §3.2.4, N1QL
// accepts key joins only ("joins are only allowed when one of the two
// sides involves the primary key within a bucket") — the query service
// rejects OnCond joins. The grammar still parses the general ON form
// because the analytics service (§6.2) executes it: "the new analytics
// service will support a much wider range of queries ... such as large
// joins".
type JoinTerm struct {
	Kind     JoinKind
	Nest     bool // NEST instead of JOIN
	Keyspace string
	Alias    string
	// OnKeys is the key-join expression (ON KEYS ...). Exactly one of
	// OnKeys/OnCond is set.
	OnKeys Expr
	// OnCond is a general join condition (ON a.x = b.y ...).
	OnCond Expr
}

// UnnestTerm is UNNEST expr [AS alias].
type UnnestTerm struct {
	Kind  JoinKind
	Expr  Expr
	Alias string
}

// OrderTerm is one ORDER BY key.
type OrderTerm struct {
	Expr Expr
	Desc bool
}

// Select is a SELECT statement.
type Select struct {
	Distinct   bool
	Raw        bool // SELECT RAW expr
	Projection []ResultTerm
	Keyspace   string // "" for FROM-less SELECT
	Alias      string
	UseKeys    Expr // nil when absent
	Joins      []JoinTerm
	Unnests    []UnnestTerm
	Where      Expr
	GroupBy    []Expr
	Having     Expr
	OrderBy    []OrderTerm
	Limit      Expr
	Offset     Expr
}

func (*Select) stmt() {}

// Insert is INSERT/UPSERT INTO ks (KEY, VALUE) VALUES ...
type Insert struct {
	Upsert    bool
	Keyspace  string
	KeyExprs  []Expr
	ValExprs  []Expr
	Returning []ResultTerm
}

func (*Insert) stmt() {}

// SetClause is one SET path = expr assignment.
type SetClause struct {
	Path Expr // Field/Element chain rooted at an Ident
	Val  Expr
}

// Update is UPDATE ks [USE KEYS] SET ... UNSET ... WHERE ... LIMIT.
type Update struct {
	Keyspace  string
	Alias     string
	UseKeys   Expr
	Sets      []SetClause
	Unsets    []Expr
	Where     Expr
	Limit     Expr
	Returning []ResultTerm
}

func (*Update) stmt() {}

// Delete is DELETE FROM ks [USE KEYS] WHERE ... LIMIT.
type Delete struct {
	Keyspace  string
	Alias     string
	UseKeys   Expr
	Where     Expr
	Limit     Expr
	Returning []ResultTerm
}

func (*Delete) stmt() {}

// IndexUsing selects the index implementation (§3.3).
type IndexUsing int

const (
	UsingGSI IndexUsing = iota
	UsingView
)

func (u IndexUsing) String() string {
	if u == UsingView {
		return "VIEW"
	}
	return "GSI"
}

// CreateIndex is CREATE [PRIMARY] INDEX ... ON ks(keys) WHERE cond
// USING GSI|VIEW WITH {...}.
type CreateIndex struct {
	Primary  bool
	Name     string
	Keyspace string
	Keys     []Expr
	Where    Expr // selective/partial index predicate (§3.3.4)
	Using    IndexUsing
	With     map[string]any
}

func (*CreateIndex) stmt() {}

// DropIndex is DROP INDEX keyspace.name.
type DropIndex struct {
	Keyspace string
	Name     string
}

func (*DropIndex) stmt() {}

// Explain wraps another statement.
type Explain struct{ Target Statement }

func (*Explain) stmt() {}
