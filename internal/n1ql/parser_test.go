package n1ql

import (
	"strings"
	"testing"
)

func parseSelect(t *testing.T, src string) *Select {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	sel, ok := stmt.(*Select)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *Select", src, stmt)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := parseSelect(t, "SELECT name, email FROM profiles WHERE age > 21")
	if sel.Keyspace != "profiles" || sel.Alias != "profiles" {
		t.Errorf("keyspace %q alias %q", sel.Keyspace, sel.Alias)
	}
	if len(sel.Projection) != 2 {
		t.Fatalf("projection %d terms", len(sel.Projection))
	}
	if sel.Projection[0].Expr.String() != "name" {
		t.Errorf("proj 0 = %s", sel.Projection[0].Expr)
	}
	if sel.Where == nil || sel.Where.String() != "(age > 21)" {
		t.Errorf("where = %v", sel.Where)
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM b")
	if !sel.Projection[0].Star || sel.Projection[0].Expr != nil {
		t.Errorf("star projection: %+v", sel.Projection[0])
	}
	sel = parseSelect(t, "SELECT p.* FROM b AS p")
	if !sel.Projection[0].Star || sel.Projection[0].Expr.String() != "p" {
		t.Errorf("alias star: %+v", sel.Projection[0])
	}
	if sel.Alias != "p" {
		t.Errorf("alias = %q", sel.Alias)
	}
}

func TestParseUseKeys(t *testing.T) {
	// From the paper §3.2.3.
	sel := parseSelect(t, `SELECT * FROM profiles USE KEYS "acme-uuid-1234-5678"`)
	if sel.UseKeys == nil {
		t.Fatal("no USE KEYS")
	}
	sel = parseSelect(t, `SELECT * FROM profiles USE KEYS ["acme-uuid-1234-5678", "roadster-uuid-4321-8765"]`)
	if _, ok := sel.UseKeys.(*ArrayConstruct); !ok {
		t.Errorf("USE KEYS = %T", sel.UseKeys)
	}
}

func TestParsePaperNestExample(t *testing.T) {
	// The NEST example from paper §3.2.3 (modulo its typo of a stray
	// alias): orders nested into the profile document.
	src := `
	  SELECT PO.personal_details, orders
	  FROM profiles_orders PO
	  USE KEYS 'borkar123'
	  NEST profiles_orders AS orders
	  ON KEYS ARRAY s.order_id FOR s IN PO.shipped_order_history END`
	sel := parseSelect(t, src)
	if sel.Alias != "PO" {
		t.Errorf("alias = %q", sel.Alias)
	}
	if len(sel.Joins) != 1 || !sel.Joins[0].Nest {
		t.Fatalf("joins: %+v", sel.Joins)
	}
	j := sel.Joins[0]
	if j.Alias != "orders" || j.Keyspace != "profiles_orders" {
		t.Errorf("nest term: %+v", j)
	}
	if _, ok := j.OnKeys.(*ArrayComprehension); !ok {
		t.Errorf("ON KEYS = %T", j.OnKeys)
	}
}

func TestParsePaperUnnestExample(t *testing.T) {
	// §3.2.3: SELECT DISTINCT (categories) FROM product UNNEST
	// product.categories AS categories.
	sel := parseSelect(t, "SELECT DISTINCT (categories) FROM product UNNEST product.categories AS categories")
	if !sel.Distinct {
		t.Error("DISTINCT not set")
	}
	if len(sel.Unnests) != 1 || sel.Unnests[0].Alias != "categories" {
		t.Fatalf("unnests: %+v", sel.Unnests)
	}
	if sel.Unnests[0].Expr.String() != "product.categories" {
		t.Errorf("unnest expr = %s", sel.Unnests[0].Expr)
	}
}

func TestParsePaperJoinExample(t *testing.T) {
	// §4.5.3: FROM ORDERS O INNER JOIN CUSTOMER C ON KEYS O.O_C_ID
	sel := parseSelect(t, "SELECT * FROM ORDERS O INNER JOIN CUSTOMER C ON KEYS O.O_C_ID")
	if len(sel.Joins) != 1 {
		t.Fatal("no join")
	}
	j := sel.Joins[0]
	if j.Kind != JoinInner || j.Nest || j.Keyspace != "CUSTOMER" || j.Alias != "C" {
		t.Errorf("join: %+v", j)
	}
	sel = parseSelect(t, "SELECT * FROM a LEFT OUTER JOIN b ON KEYS a.bid")
	if sel.Joins[0].Kind != JoinLeftOuter {
		t.Error("left outer join kind")
	}
}

func TestParseWorkloadEQuery(t *testing.T) {
	// The appendix's YCSB workload E query.
	sel := parseSelect(t, "SELECT meta().id AS id FROM `bucket` WHERE meta().id >= $1 LIMIT $2")
	if sel.Projection[0].Alias != "id" {
		t.Errorf("alias = %q", sel.Projection[0].Alias)
	}
	if _, ok := sel.Projection[0].Expr.(*Field); !ok {
		t.Errorf("proj expr = %T", sel.Projection[0].Expr)
	}
	if sel.Where.String() != "(meta().id >= $1)" {
		t.Errorf("where = %s", sel.Where)
	}
	if sel.Limit.String() != "$2" {
		t.Errorf("limit = %v", sel.Limit)
	}
}

func TestParseOrderLimitOffset(t *testing.T) {
	sel := parseSelect(t, "SELECT title FROM catalog ORDER BY title DESC, year LIMIT 10 OFFSET 5")
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by: %+v", sel.OrderBy)
	}
	if sel.Limit.String() != "10" || sel.Offset.String() != "5" {
		t.Errorf("limit/offset: %v %v", sel.Limit, sel.Offset)
	}
}

func TestParseGroupByHaving(t *testing.T) {
	sel := parseSelect(t, "SELECT city, COUNT(*) AS n FROM p GROUP BY city HAVING COUNT(*) > 2")
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].String() != "city" {
		t.Errorf("group by: %+v", sel.GroupBy)
	}
	if sel.Having == nil {
		t.Error("no having")
	}
	fc := sel.Projection[1].Expr.(*FuncCall)
	if !fc.Star || fc.Name != "COUNT" {
		t.Errorf("count(*): %+v", fc)
	}
}

func TestParseInsertUpsert(t *testing.T) {
	stmt, err := Parse(`INSERT INTO b (KEY, VALUE) VALUES ("k1", {"a": 1}), ("k2", {"a": 2}) RETURNING meta().id`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if ins.Upsert || len(ins.KeyExprs) != 2 || len(ins.Returning) != 1 {
		t.Errorf("insert: %+v", ins)
	}
	stmt, err = Parse(`UPSERT INTO b (KEY, VALUE) VALUES ($k, $v)`)
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.(*Insert).Upsert {
		t.Error("upsert flag")
	}
}

func TestParseUpdate(t *testing.T) {
	stmt, err := Parse(`UPDATE b USE KEYS "k" SET a.x = 1, y = "z" UNSET old WHERE c = 2 LIMIT 3 RETURNING *`)
	if err != nil {
		t.Fatal(err)
	}
	u := stmt.(*Update)
	if len(u.Sets) != 2 || len(u.Unsets) != 1 || u.Where == nil || u.Limit == nil {
		t.Errorf("update: %+v", u)
	}
	if u.Sets[0].Path.String() != "a.x" {
		t.Errorf("set path: %s", u.Sets[0].Path)
	}
}

func TestParseDelete(t *testing.T) {
	stmt, err := Parse(`DELETE FROM b WHERE type = "stale" LIMIT 100`)
	if err != nil {
		t.Fatal(err)
	}
	d := stmt.(*Delete)
	if d.Keyspace != "b" || d.Where == nil || d.Limit == nil {
		t.Errorf("delete: %+v", d)
	}
}

func TestParseCreateIndexVariants(t *testing.T) {
	// All four §3.3 examples.
	stmt, err := Parse("CREATE INDEX email on `Profile` (email) USING VIEW")
	if err != nil {
		t.Fatal(err)
	}
	ci := stmt.(*CreateIndex)
	if ci.Primary || ci.Name != "email" || ci.Keyspace != "Profile" || ci.Using != UsingView {
		t.Errorf("view index: %+v", ci)
	}

	stmt, _ = Parse("CREATE INDEX email on `Profile` (email) USING GSI")
	if stmt.(*CreateIndex).Using != UsingGSI {
		t.Error("gsi index")
	}

	stmt, err = Parse("CREATE PRIMARY INDEX profile_pk_view ON Profile USING VIEW")
	if err != nil {
		t.Fatal(err)
	}
	ci = stmt.(*CreateIndex)
	if !ci.Primary || ci.Name != "profile_pk_view" {
		t.Errorf("primary: %+v", ci)
	}

	stmt, err = Parse(`CREATE PRIMARY INDEX ON Profile USING GSI WITH {"defer_build": true}`)
	if err != nil {
		t.Fatal(err)
	}
	ci = stmt.(*CreateIndex)
	if !ci.Primary || ci.Name != "#primary" || ci.With["defer_build"] != true {
		t.Errorf("primary with: %+v", ci)
	}

	// §3.3.4 selective index.
	stmt, err = Parse("CREATE INDEX over21 ON `Profile`(age) WHERE age > 21 USING GSI")
	if err != nil {
		t.Fatal(err)
	}
	ci = stmt.(*CreateIndex)
	if ci.Where == nil || ci.Where.String() != "(age > 21)" {
		t.Errorf("partial index where: %v", ci.Where)
	}
}

func TestParseDropIndex(t *testing.T) {
	stmt, err := Parse("DROP INDEX Profile.email")
	if err != nil {
		t.Fatal(err)
	}
	di := stmt.(*DropIndex)
	if di.Keyspace != "Profile" || di.Name != "email" {
		t.Errorf("drop: %+v", di)
	}
	stmt, err = Parse("DROP PRIMARY INDEX ON Profile")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DropIndex).Name != "#primary" {
		t.Error("drop primary")
	}
}

func TestParseExplain(t *testing.T) {
	// The paper's §4.5.3 example.
	stmt, err := Parse("EXPLAIN SELECT title, genre, runtime FROM catalog.details ORDER BY title")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*Explain)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	sel := ex.Target.(*Select)
	if sel.Keyspace != "catalog.details" || sel.Alias != "details" {
		t.Errorf("dotted keyspace: %q alias %q", sel.Keyspace, sel.Alias)
	}
}

func TestParseExpressions(t *testing.T) {
	// Expression String() round-trips through the parser.
	exprs := []string{
		"(a AND (b OR (NOT c)))",
		"((a + (b * c)) - 2)",
		"(name LIKE \"D%\")",
		"(x IN [1, 2, 3])",
		"(x BETWEEN 1 AND 10)",
		"(x NOT BETWEEN 1 AND 10)",
		"(x IS NULL)",
		"(x IS NOT MISSING)",
		"(x IS VALUED)",
		"ANY c IN categories SATISFIES (c = \"x\") END",
		"EVERY c IN categories SATISFIES (c > 0) END",
		"ARRAY s.order_id FOR s IN history WHEN (s.total > 10) END",
		"CASE WHEN (a > 1) THEN \"big\" ELSE \"small\" END",
		"CASE x WHEN 1 THEN \"one\" END",
		"meta().id",
		"meta(p).cas",
		"UPPER(name)",
		"COUNT(DISTINCT city)",
		"doc.items[0].price",
		"doc.items[(i + 1)]",
		"{\"k\": v, \"n\": 2}",
		"(-x)",
		"(NOT (x LIKE \"a%\"))",
	}
	for _, src := range exprs {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
			continue
		}
		e2, err := ParseExpr(e.String())
		if err != nil {
			t.Errorf("re-parse of %q (from %q): %v", e.String(), src, err)
			continue
		}
		if e.String() != e2.String() {
			t.Errorf("round trip: %q -> %q -> %q", src, e.String(), e2.String())
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	cases := map[string]string{
		"a OR b AND c":   "(a OR (b AND c))",
		"a + b * c":      "(a + (b * c))",
		"a * b + c":      "((a * b) + c)",
		"NOT a = b":      "(NOT (a = b))",
		"a = b OR c = d": "((a = b) OR (c = d))",
		"a - b - c":      "((a - b) - c)",
		"a || b || c":    "((a || b) || c)",
		"-a + b":         "((-a) + b)",
		"a < b = TRUE":   "((a < b) = true)",
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
			continue
		}
		if e.String() != want {
			t.Errorf("%q parsed as %s, want %s", src, e.String(), want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM b",
		"SELECT * FROM",
		"SELECT * FROM b WHERE",
		"SELECT * FROM b USE KEY 'x'",
		"INSERT INTO b VALUES ('k', 1)",
		"CREATE INDEX ON b(x)",
		"DROP INDEX b",
		"SELECT * FROM b ORDER title",
		"SELECT a b c FROM b",
		"x BETWEEN 1",
		"CASE END",
		"ANY x IN a END",
		"SELECT * FROM b WHERE x IS BOGUS",
		"SELECT * FROM b LIMIT",
		"'unterminated",
		"SELECT * FROM b WHERE x = @",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	sel := parseSelect(t, `SELECT a -- a line comment
		FROM b /* block
		comment */ WHERE c = 1`)
	if sel.Keyspace != "b" || sel.Where == nil {
		t.Error("comments broke parsing")
	}
}

func TestParseBackticksAndEscapes(t *testing.T) {
	sel := parseSelect(t, "SELECT `select`, `weird name` FROM `bucket-1`")
	if sel.Keyspace != "bucket-1" {
		t.Errorf("keyspace = %q", sel.Keyspace)
	}
	if sel.Projection[0].Expr.String() != "`select`" {
		t.Errorf("keyword ident: %s", sel.Projection[0].Expr)
	}
	e, err := ParseExpr(`'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if e.(*Literal).Val != "it's" {
		t.Errorf("escaped quote: %v", e.(*Literal).Val)
	}
}

func TestParseStatementTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT 1;"); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
	if _, err := Parse("SELECT 1; SELECT 2"); err == nil {
		t.Error("two statements should fail")
	}
}

func TestParseKeywordFieldNames(t *testing.T) {
	e, err := ParseExpr("doc.end")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "end") {
		t.Errorf("keyword field: %s", e)
	}
}

func TestParseGeneralJoin(t *testing.T) {
	// The general ON form parses (the analytics service executes it;
	// the operational query service rejects it per §3.2.4).
	sel := parseSelect(t, "SELECT * FROM a JOIN b ON a.x = b.y AND b.type = 'z'")
	if len(sel.Joins) != 1 {
		t.Fatal("no join")
	}
	j := sel.Joins[0]
	if j.OnKeys != nil || j.OnCond == nil {
		t.Fatalf("join: %+v", j)
	}
	if j.OnCond.String() != `((a.x = b.y) AND (b.type = "z"))` {
		t.Errorf("cond: %s", j.OnCond)
	}
	// ON KEYS still parses as a key join.
	sel = parseSelect(t, "SELECT * FROM a JOIN b ON KEYS a.bid")
	if sel.Joins[0].OnKeys == nil || sel.Joins[0].OnCond != nil {
		t.Errorf("key join: %+v", sel.Joins[0])
	}
	// General NEST.
	sel = parseSelect(t, "SELECT * FROM a NEST b ON b.parent = a.id")
	if !sel.Joins[0].Nest || sel.Joins[0].OnCond == nil {
		t.Errorf("general nest: %+v", sel.Joins[0])
	}
}
