package n1ql

import (
	"fmt"
	"strconv"
	"strings"

	"couchgo/internal/value"
)

// Parse parses one N1QL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if !p.at(tkEOF, "") {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// ParseExpr parses a standalone expression (index definitions, view map
// specs, and filters reuse the expression language this way).
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.at(tkEOF, "") {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) backup()     { p.pos-- }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) atKeyword(kw string) bool { return p.at(tkKeyword, kw) }

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	if p.at(tkOp, op) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q, found %s", op, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind == tkIdent {
		p.pos++
		return t.text, nil
	}
	return "", p.errorf("expected identifier, found %s", t)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("n1ql: parse error at position %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// --- Statements ---

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKeyword("EXPLAIN"):
		target, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &Explain{Target: target}, nil
	case p.atKeyword("SELECT"):
		return p.selectStatement()
	case p.atKeyword("INSERT"), p.atKeyword("UPSERT"):
		return p.insertStatement()
	case p.atKeyword("UPDATE"):
		return p.updateStatement()
	case p.atKeyword("DELETE"):
		return p.deleteStatement()
	case p.atKeyword("CREATE"):
		return p.createStatement()
	case p.atKeyword("DROP"):
		return p.dropStatement()
	}
	return nil, p.errorf("expected a statement, found %s", p.peek())
}

func (p *parser) selectStatement() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else if p.acceptKeyword("ALL") {
		// ALL is the default; accepted and ignored.
	}
	if p.acceptKeyword("RAW") {
		sel.Raw = true
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		alias := ""
		if p.acceptKeyword("AS") {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			alias = a
		}
		sel.Projection = []ResultTerm{{Expr: e, Alias: alias}}
	} else {
		terms, err := p.projection()
		if err != nil {
			return nil, err
		}
		sel.Projection = terms
	}
	if p.acceptKeyword("FROM") {
		ks, err := p.ident()
		if err != nil {
			return nil, err
		}
		sel.Keyspace = ks
		sel.Alias = ks
		// Optional dotted sub-path, e.g. catalog.details in the paper's
		// EXPLAIN example; we treat the last component as the keyspace
		// qualifier and keep the full name.
		for p.acceptOp(".") {
			part, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.Keyspace = sel.Keyspace + "." + part
			sel.Alias = part
		}
		if p.acceptKeyword("AS") {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.Alias = a
		} else if p.at(tkIdent, "") {
			a, _ := p.ident()
			sel.Alias = a
		}
		if p.acceptKeyword("USE") {
			if err := p.expectKeyword("KEYS"); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.UseKeys = e
		}
		// JOIN / NEST / UNNEST terms, in order.
		for {
			kind := JoinInner
			explicitKind := false
			if p.acceptKeyword("INNER") {
				explicitKind = true
			} else if p.acceptKeyword("LEFT") {
				p.acceptKeyword("OUTER")
				kind = JoinLeftOuter
				explicitKind = true
			}
			switch {
			case p.acceptKeyword("JOIN"):
				jt, err := p.joinTerm(kind, false)
				if err != nil {
					return nil, err
				}
				sel.Joins = append(sel.Joins, *jt)
			case p.acceptKeyword("NEST"):
				jt, err := p.joinTerm(kind, true)
				if err != nil {
					return nil, err
				}
				sel.Joins = append(sel.Joins, *jt)
			case p.acceptKeyword("UNNEST"):
				ut, err := p.unnestTerm(kind)
				if err != nil {
					return nil, err
				}
				sel.Unnests = append(sel.Unnests, *ut)
			default:
				if explicitKind {
					return nil, p.errorf("expected JOIN, NEST, or UNNEST after join qualifier")
				}
				goto fromDone
			}
		}
	fromDone:
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if p.acceptKeyword("HAVING") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.Having = e
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			ot := OrderTerm{Expr: e}
			if p.acceptKeyword("DESC") {
				ot.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, ot)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	if p.acceptKeyword("OFFSET") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Offset = e
	}
	return sel, nil
}

func (p *parser) projection() ([]ResultTerm, error) {
	var terms []ResultTerm
	for {
		if p.acceptOp("*") {
			terms = append(terms, ResultTerm{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			// alias.* renders as Field access on '*'; detect the lexer
			// form: expr followed by ".*".
			if p.acceptOp(".") {
				if err := p.expectOp("*"); err != nil {
					return nil, err
				}
				terms = append(terms, ResultTerm{Expr: e, Star: true})
			} else {
				rt := ResultTerm{Expr: e}
				if p.acceptKeyword("AS") {
					a, err := p.ident()
					if err != nil {
						return nil, err
					}
					rt.Alias = a
				} else if p.at(tkIdent, "") {
					a, _ := p.ident()
					rt.Alias = a
				}
				terms = append(terms, rt)
			}
		}
		if !p.acceptOp(",") {
			return terms, nil
		}
	}
}

func (p *parser) joinTerm(kind JoinKind, nest bool) (*JoinTerm, error) {
	ks, err := p.ident()
	if err != nil {
		return nil, err
	}
	jt := &JoinTerm{Kind: kind, Nest: nest, Keyspace: ks, Alias: ks}
	if p.acceptKeyword("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		jt.Alias = a
	} else if p.at(tkIdent, "") {
		a, _ := p.ident()
		jt.Alias = a
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("KEYS") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		jt.OnKeys = e
		return jt, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	jt.OnCond = e
	return jt, nil
}

func (p *parser) unnestTerm(kind JoinKind) (*UnnestTerm, error) {
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	ut := &UnnestTerm{Kind: kind, Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		ut.Alias = a
	} else if p.at(tkIdent, "") {
		a, _ := p.ident()
		ut.Alias = a
	} else {
		// Default alias: last path component.
		ut.Alias = lastPathComponent(e)
	}
	return ut, nil
}

func lastPathComponent(e Expr) string {
	switch t := e.(type) {
	case *Field:
		return t.Name
	case *Ident:
		return t.Name
	case *Element:
		return lastPathComponent(t.Recv)
	}
	return "unnest"
}

func (p *parser) insertStatement() (*Insert, error) {
	ins := &Insert{}
	if p.acceptKeyword("UPSERT") {
		ins.Upsert = true
	} else if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	ks, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins.Keyspace = ks
	// (KEY, VALUE) VALUES (k, v) [, (k, v)]...
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("KEY"); err != nil {
		return nil, err
	}
	if err := p.expectOp(","); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUE"); err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		k, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(","); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.KeyExprs = append(ins.KeyExprs, k)
		ins.ValExprs = append(ins.ValExprs, v)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("RETURNING") {
		terms, err := p.projection()
		if err != nil {
			return nil, err
		}
		ins.Returning = terms
	}
	return ins, nil
}

func (p *parser) updateStatement() (*Update, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	ks, err := p.ident()
	if err != nil {
		return nil, err
	}
	upd := &Update{Keyspace: ks, Alias: ks}
	if p.acceptKeyword("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		upd.Alias = a
	} else if p.at(tkIdent, "") {
		a, _ := p.ident()
		upd.Alias = a
	}
	if p.acceptKeyword("USE") {
		if err := p.expectKeyword("KEYS"); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		upd.UseKeys = e
	}
	if p.acceptKeyword("SET") {
		for {
			// The assignment target is a path (postfix chain), not a
			// general expression — `a.x = 1` must not parse as equality.
			path, err := p.postfixExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			upd.Sets = append(upd.Sets, SetClause{Path: path, Val: val})
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("UNSET") {
		for {
			path, err := p.postfixExpr()
			if err != nil {
				return nil, err
			}
			upd.Unsets = append(upd.Unsets, path)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		upd.Where = e
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		upd.Limit = e
	}
	if p.acceptKeyword("RETURNING") {
		terms, err := p.projection()
		if err != nil {
			return nil, err
		}
		upd.Returning = terms
	}
	return upd, nil
}

func (p *parser) deleteStatement() (*Delete, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	ks, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Keyspace: ks, Alias: ks}
	if p.acceptKeyword("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		del.Alias = a
	} else if p.at(tkIdent, "") {
		a, _ := p.ident()
		del.Alias = a
	}
	if p.acceptKeyword("USE") {
		if err := p.expectKeyword("KEYS"); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		del.UseKeys = e
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		del.Limit = e
	}
	if p.acceptKeyword("RETURNING") {
		terms, err := p.projection()
		if err != nil {
			return nil, err
		}
		del.Returning = terms
	}
	return del, nil
}

func (p *parser) createStatement() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	ci := &CreateIndex{Using: UsingGSI}
	if p.acceptKeyword("PRIMARY") {
		ci.Primary = true
	}
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	if p.at(tkIdent, "") {
		name, _ := p.ident()
		ci.Name = name
	}
	if ci.Name == "" && !ci.Primary {
		return nil, p.errorf("secondary index requires a name")
	}
	if ci.Name == "" {
		ci.Name = "#primary"
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	ks, err := p.ident()
	if err != nil {
		return nil, err
	}
	ci.Keyspace = ks
	if !ci.Primary {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			ci.Keys = append(ci.Keys, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ci.Where = e
	}
	if p.acceptKeyword("USING") {
		switch {
		case p.acceptKeyword("GSI"):
			ci.Using = UsingGSI
		case p.acceptKeyword("VIEW"):
			ci.Using = UsingView
		default:
			return nil, p.errorf("expected GSI or VIEW after USING")
		}
	}
	if p.acceptKeyword("WITH") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		obj, err := Eval(e, &Context{})
		if err != nil {
			return nil, p.errorf("WITH clause must be a constant object: %v", err)
		}
		m, ok := obj.(map[string]any)
		if !ok {
			return nil, p.errorf("WITH clause must be an object")
		}
		ci.With = m
	}
	return ci, nil
}

func (p *parser) dropStatement() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("INDEX"):
		ks, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("."); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Keyspace: ks, Name: name}, nil
	case p.acceptKeyword("PRIMARY"):
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		ks, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Keyspace: ks, Name: "#primary"}, nil
	}
	return nil, p.errorf("expected INDEX after DROP")
}

// --- Expressions (precedence climbing) ---

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	lhs, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		rhs, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: OpOr, LHS: lhs, RHS: rhs}
	}
	return lhs, nil
}

func (p *parser) andExpr() (Expr, error) {
	lhs, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		rhs, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: OpAnd, LHS: lhs, RHS: rhs}
	}
	return lhs, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNot, Operand: e}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	lhs, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("="), p.acceptOp("=="):
			rhs, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpEq, LHS: lhs, RHS: rhs}
		case p.acceptOp("!="), p.acceptOp("<>"):
			rhs, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpNe, LHS: lhs, RHS: rhs}
		case p.acceptOp("<="):
			rhs, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpLe, LHS: lhs, RHS: rhs}
		case p.acceptOp("<"):
			rhs, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpLt, LHS: lhs, RHS: rhs}
		case p.acceptOp(">="):
			rhs, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpGe, LHS: lhs, RHS: rhs}
		case p.acceptOp(">"):
			rhs, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpGt, LHS: lhs, RHS: rhs}
		case p.acceptKeyword("LIKE"):
			rhs, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpLike, LHS: lhs, RHS: rhs}
		case p.acceptKeyword("IN"):
			rhs, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpIn, LHS: lhs, RHS: rhs}
		case p.acceptKeyword("BETWEEN"):
			lo, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Between{Operand: lhs, Lo: lo, Hi: hi}
		case p.atKeyword("NOT"):
			// NOT LIKE / NOT IN / NOT BETWEEN
			p.pos++
			switch {
			case p.acceptKeyword("LIKE"):
				rhs, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				lhs = &Unary{Op: OpNot, Operand: &Binary{Op: OpLike, LHS: lhs, RHS: rhs}}
			case p.acceptKeyword("IN"):
				rhs, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				lhs = &Unary{Op: OpNot, Operand: &Binary{Op: OpIn, LHS: lhs, RHS: rhs}}
			case p.acceptKeyword("BETWEEN"):
				lo, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				lhs = &Between{Operand: lhs, Lo: lo, Hi: hi, Not: true}
			default:
				p.backup()
				return lhs, nil
			}
		case p.acceptKeyword("IS"):
			not := p.acceptKeyword("NOT")
			var kind IsKind
			switch {
			case p.acceptKeyword("NULL"):
				kind = IsNull
				if not {
					kind = IsNotNull
				}
			case p.acceptKeyword("MISSING"):
				kind = IsMissingP
				if not {
					kind = IsNotMissing
				}
			case p.acceptKeyword("VALUED"):
				kind = IsValued
				if not {
					kind = IsNotValued
				}
			default:
				return nil, p.errorf("expected NULL, MISSING, or VALUED after IS")
			}
			lhs = &Is{Kind: kind, Operand: lhs}
		default:
			return lhs, nil
		}
	}
}

func (p *parser) addExpr() (Expr, error) {
	lhs, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			rhs, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpAdd, LHS: lhs, RHS: rhs}
		case p.acceptOp("-"):
			rhs, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpSub, LHS: lhs, RHS: rhs}
		case p.acceptOp("||"):
			rhs, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpConcat, LHS: lhs, RHS: rhs}
		default:
			return lhs, nil
		}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			rhs, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpMul, LHS: lhs, RHS: rhs}
		case p.acceptOp("/"):
			rhs, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpDiv, LHS: lhs, RHS: rhs}
		case p.acceptOp("%"):
			rhs, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Op: OpMod, LHS: lhs, RHS: rhs}
		default:
			return lhs, nil
		}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok {
			if f, isNum := value.AsNumber(lit.Val); isNum {
				return &Literal{Val: -f}, nil
			}
		}
		return &Unary{Op: OpNeg, Operand: e}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("."):
			// .* is handled by the projection parser; here it's an error
			// unless an identifier follows.
			if p.at(tkOp, "*") {
				p.backup() // leave ".*" for the caller
				return e, nil
			}
			name, err := p.fieldName()
			if err != nil {
				return nil, err
			}
			e = &Field{Recv: e, Name: name}
		case p.acceptOp("["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			e = &Element{Recv: e, Index: idx}
		default:
			return e, nil
		}
	}
}

// fieldName allows keywords after a dot (doc.end, doc.key, ...).
func (p *parser) fieldName() (string, error) {
	t := p.peek()
	if t.kind == tkIdent || t.kind == tkKeyword {
		p.pos++
		if t.kind == tkKeyword {
			// Preserve original case? The lexer uppercased it; accept the
			// uppercase spelling (backticks preserve exact case).
			return strings.ToLower(t.text), nil
		}
		return t.text, nil
	}
	return "", p.errorf("expected field name, found %s", t)
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkNumber:
		p.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &Literal{Val: f}, nil
	case tkString:
		p.pos++
		return &Literal{Val: t.text}, nil
	case tkParam:
		p.pos++
		return &Param{Name: t.text}, nil
	case tkKeyword:
		switch t.text {
		case "TRUE":
			p.pos++
			return &Literal{Val: true}, nil
		case "FALSE":
			p.pos++
			return &Literal{Val: false}, nil
		case "NULL":
			p.pos++
			return &Literal{Val: nil}, nil
		case "MISSING":
			p.pos++
			return &Literal{Val: value.Missing}, nil
		case "CASE":
			return p.caseExpr()
		case "ANY", "EVERY":
			return p.collPredicate()
		case "ARRAY":
			return p.arrayComprehension()
		case "EXISTS":
			p.pos++
			e, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &FuncCall{Name: "EXISTS", Args: []Expr{e}}, nil
		}
		return nil, p.errorf("unexpected keyword %s in expression", t)
	case tkIdent:
		p.pos++
		name := t.text
		if p.acceptOp("(") {
			return p.funcCall(name)
		}
		if strings.EqualFold(name, "self") {
			return &Self{}, nil
		}
		return &Ident{Name: name}, nil
	case tkOp:
		switch t.text {
		case "(":
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			p.pos++
			ac := &ArrayConstruct{}
			if !p.acceptOp("]") {
				for {
					e, err := p.expr()
					if err != nil {
						return nil, err
					}
					ac.Elems = append(ac.Elems, e)
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp("]"); err != nil {
					return nil, err
				}
			}
			return ac, nil
		case "{":
			p.pos++
			oc := &ObjectConstruct{}
			if !p.acceptOp("}") {
				for {
					nt := p.next()
					if nt.kind != tkString && nt.kind != tkIdent {
						return nil, p.errorf("expected field name in object literal, found %s", nt)
					}
					if err := p.expectOp(":"); err != nil {
						return nil, err
					}
					v, err := p.expr()
					if err != nil {
						return nil, err
					}
					oc.Names = append(oc.Names, nt.text)
					oc.Vals = append(oc.Vals, v)
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp("}"); err != nil {
					return nil, err
				}
			}
			return oc, nil
		}
	}
	return nil, p.errorf("unexpected %s in expression", t)
}

func (p *parser) funcCall(name string) (Expr, error) {
	upper := strings.ToUpper(name)
	if upper == "META" {
		alias := ""
		if !p.at(tkOp, ")") {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			alias = a
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &MetaExpr{Alias: alias}, nil
	}
	fc := &FuncCall{Name: upper}
	if p.acceptOp("*") {
		fc.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.acceptOp(")") {
		return fc, nil
	}
	if p.acceptKeyword("DISTINCT") {
		fc.Distinct = true
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) caseExpr() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	if !p.atKeyword("WHEN") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Operand = e
	}
	for p.acceptKeyword("WHEN") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		th, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, w)
		ce.Thens = append(ce.Thens, th)
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *parser) collPredicate() (Expr, error) {
	kind := CollAny
	if p.acceptKeyword("EVERY") {
		kind = CollEvery
	} else if err := p.expectKeyword("ANY"); err != nil {
		return nil, err
	}
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	coll, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SATISFIES"); err != nil {
		return nil, err
	}
	sat, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return &CollPredicate{Kind: kind, Var: v, Coll: coll, Satisfies: sat}, nil
}

func (p *parser) arrayComprehension() (Expr, error) {
	if err := p.expectKeyword("ARRAY"); err != nil {
		return nil, err
	}
	mapper, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FOR"); err != nil {
		return nil, err
	}
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	coll, err := p.expr()
	if err != nil {
		return nil, err
	}
	ac := &ArrayComprehension{Mapper: mapper, Var: v, Coll: coll}
	if p.acceptKeyword("WHEN") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		ac.When = w
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ac, nil
}
