// Package cache implements the object-managed cache at the heart of the
// data service (paper §4.3.3): one hash table per vBucket holding each
// document's key, metadata, and (when resident) its value.
//
// The cache is the memory-first write path's source of truth. Every
// mutation is applied here first and acknowledged to the client before
// anything is persisted or replicated (Figure 6). Keys and metadata stay
// resident by default; values can be evicted under memory pressure and
// re-fetched from the storage engine on demand ("value eviction").
//
// Concurrency control follows the paper: CAS (compare-and-swap)
// optimistic locking for the common case, plus a stricter GetAndLock /
// Unlock hard lock with a timeout "to avoid deadlocks" (§3.1.1).
//
// The table is hash-striped (DESIGN.md §10): keys spread over
// numStripes independently locked sub-tables, so readers and writers
// of different keys never contend, and a resident-hit Get touches one
// stripe lock and nothing else. Mutations additionally serialize
// through a short sequencing section (seqMu) that assigns the seqno
// and emits the mutation to the observer — the pair is atomic, which
// is what guarantees observers see mutations in seqno order.
package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"couchgo/internal/metrics"
)

// Process-wide cache counters (summed across every hash table). Hit
// and miss counting lives in the vBucket layer, which distinguishes
// resident hits from background fetches; the table itself counts what
// only it can see: lazy expirations and pager evictions.
var (
	mExpirations   = metrics.Default.Counter("couchgo_cache_expirations_total")
	mEvictionsVal  = metrics.Default.Counter("couchgo_cache_evictions_total", "mode", "value")
	mEvictionsFull = metrics.Default.Counter("couchgo_cache_evictions_total", "mode", "full")
)

// Errors returned by hash-table operations. They mirror the memcached
// binary-protocol status codes the real data service speaks.
var (
	ErrKeyNotFound  = errors.New("cache: key not found")
	ErrKeyExists    = errors.New("cache: key already exists")
	ErrCASMismatch  = errors.New("cache: CAS mismatch")
	ErrLocked       = errors.New("cache: document is locked")
	ErrNotLocked    = errors.New("cache: document is not locked")
	ErrValueEvicted = errors.New("cache: value not resident")
	ErrTombstone    = errors.New("cache: key is deleted")
)

// casCounter generates cluster-unique, monotonically increasing CAS
// values. The real system derives CAS from a hybrid logical clock; a
// process-wide atomic counter preserves the properties the rest of the
// system relies on (uniqueness and monotonicity per document).
var casCounter atomic.Uint64

// NextCAS returns a fresh CAS value.
func NextCAS() uint64 { return casCounter.Add(1) }

// BumpCAS advances the CAS clock past an externally observed value
// (warmup from disk, replica apply, XDCR), preserving monotonicity
// across restarts and clusters.
func BumpCAS(seen uint64) {
	for {
		cur := casCounter.Load()
		if cur >= seen || casCounter.CompareAndSwap(cur, seen) {
			return
		}
	}
}

// Item is one document's entry in the hash table: identity, metadata,
// and the (possibly evicted) value.
type Item struct {
	Key   string
	Value []byte // nil when !Resident or Deleted

	// CAS changes on every mutation; clients echo it for optimistic
	// concurrency control.
	CAS uint64
	// RevSeqno counts mutations to this document over its lifetime. XDCR
	// conflict resolution prefers the copy with more updates (§4.6.1).
	RevSeqno uint64
	// Seqno is the per-vBucket mutation sequence number assigned at
	// cache-insert time; DCP, durability, and index consistency all
	// reason in seqnos (§4.2).
	Seqno uint64

	Flags  uint32
	Expiry int64 // unix seconds; 0 = no expiry
	// Deleted marks a tombstone: metadata retained so replicas and
	// indexes can observe the deletion; value gone.
	Deleted bool
	// Resident is false when the value has been evicted from memory.
	Resident bool

	lockedUntil int64 // unix seconds; 0 = unlocked
	nru         uint8 // not-recently-used clock for the item pager
}

func (it *Item) locked(now int64) bool {
	return it.lockedUntil != 0 && now < it.lockedUntil
}

func (it *Item) expired(now int64) bool {
	return it.Expiry != 0 && now >= it.Expiry
}

// memSize approximates the memory footprint used for watermark
// accounting: key + value + fixed per-item overhead.
func (it *Item) memSize() int64 {
	return int64(len(it.Key)) + int64(len(it.Value)) + 80
}

// snapshot returns a copy safe to hand to callers (value shared
// read-only by convention: callers must not mutate returned bytes).
func (it *Item) snapshot() Item {
	cp := *it
	return cp
}

// numStripes is the sub-table fan-out per vBucket. Must be a power of
// two. 16 stripes × up to 1024 vBuckets keeps per-stripe maps small
// while making same-table lock collisions rare.
const numStripes = 16

// stripe is one independently locked sub-table. Padded so adjacent
// stripes' mutexes do not share a cache line.
type stripe struct {
	mu    sync.Mutex
	items map[string]*Item
	_     [40]byte
}

// HashTable is the per-vBucket document table. All operations take the
// current time explicitly so expiry and lock behaviour is testable.
//
// Locking (DESIGN.md §10): each key belongs to exactly one stripe;
// operations lock that stripe only. Mutations, while still holding the
// stripe lock, enter seqMu to (a) draw the next seqno, (b) install the
// new version, and (c) emit it to the observer — so observation order
// equals seqno order. The only lock order is stripe.mu → seqMu; no
// path acquires a stripe while holding seqMu or another stripe, except
// the consistent-snapshot scan, which takes all stripes in ascending
// index order and never touches seqMu.
type HashTable struct {
	stripes [numStripes]stripe

	// seqMu serializes seqno assignment + observer emission. nextSeqno
	// is the vBucket's mutation clock: "When a document is written, a
	// sequence number is generated and associated with the mutation.
	// The maximum sequence number per vBucket is also tracked." (§4.2)
	// It is only Add-ed under seqMu (CAS-max elsewhere), and read
	// lock-free by HighSeqno.
	seqMu     sync.Mutex
	nextSeqno atomic.Uint64

	// Table accounting, maintained atomically so Stats and the metrics
	// pollers never contend with the KV path.
	memUsed     atomic.Int64
	itemCount   atomic.Int64
	tombCount   atomic.Int64
	nonResident atomic.Int64
	// expiring counts entries with a nonzero Expiry. The proactive
	// expiry pager scans a table only when this is nonzero, so
	// TTL-free workloads never pay for the periodic full-table scan.
	expiring atomic.Int64

	// onMutate, when set, observes every applied mutation inside the
	// sequencing section, guaranteeing the observer sees mutations in
	// seqno order. The vBucket layer uses this to feed the disk-write
	// queue and the DCP producer atomically with the cache write. The
	// context is the mutating caller's (it carries the active trace
	// span); internally triggered mutations such as lazy expiry pass
	// context.Background().
	onMutate func(ctx context.Context, it Item)
}

// NewHashTable creates an empty table.
func NewHashTable() *HashTable {
	h := &HashTable{}
	for i := range h.stripes {
		h.stripes[i].items = make(map[string]*Item)
	}
	return h
}

// stripeOf picks key's stripe with inline FNV-1a (no allocation).
func (h *HashTable) stripeOf(key string) *stripe {
	hash := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		hash ^= uint32(key[i])
		hash *= 16777619
	}
	return &h.stripes[hash&(numStripes-1)]
}

// OnMutate registers the ordered mutation observer. Must be called
// before the table receives traffic.
func (h *HashTable) OnMutate(fn func(context.Context, Item)) { h.onMutate = fn }

// HighSeqno returns the max sequence number assigned so far. Lock-free.
func (h *HashTable) HighSeqno() uint64 { return h.nextSeqno.Load() }

// SetHighSeqno force-sets the seqno clock. Used when a replica is
// promoted to active so the new active continues the stream.
func (h *HashTable) SetHighSeqno(s uint64) {
	for {
		cur := h.nextSeqno.Load()
		if cur >= s || h.nextSeqno.CompareAndSwap(cur, s) {
			return
		}
	}
}

// Stats reports table-level counters.
type Stats struct {
	Items       int64 // live documents (excluding tombstones)
	Tombstones  int64
	MemUsed     int64
	HighSeqno   uint64
	NonResident int64
}

// Stats returns a snapshot of the table counters. Served entirely from
// atomics: metrics polling never takes a table lock.
func (h *HashTable) Stats() Stats {
	return Stats{
		Items:       h.itemCount.Load(),
		Tombstones:  h.tombCount.Load(),
		MemUsed:     h.memUsed.Load(),
		HighSeqno:   h.nextSeqno.Load(),
		NonResident: h.nonResident.Load(),
	}
}

// Get returns the item for key. Expired documents are lazily deleted
// (the deletion gets a seqno and flows to observers like any mutation).
// A resident=false item is returned with ErrValueEvicted; the caller
// (the vBucket layer) fetches the value from storage and restores it.
// A resident hit allocates nothing.
func (h *HashTable) Get(key string, now int64) (Item, error) {
	st := h.stripeOf(key)
	st.mu.Lock()
	it, ok := st.items[key]
	if !ok || it.Deleted {
		st.mu.Unlock()
		return Item{}, ErrKeyNotFound
	}
	if it.expired(now) {
		mExpirations.Inc()
		h.deleteStriped(context.Background(), st, it)
		st.mu.Unlock()
		return Item{}, ErrKeyNotFound
	}
	it.nru = 0
	if !it.Resident {
		snap := it.snapshot()
		st.mu.Unlock()
		return snap, ErrValueEvicted
	}
	snap := it.snapshot()
	st.mu.Unlock()
	return snap, nil
}

// GetMeta returns the item metadata even for tombstones. Used by XDCR
// conflict resolution and durability observers.
func (h *HashTable) GetMeta(key string) (Item, error) {
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	it, ok := st.items[key]
	if !ok {
		return Item{}, ErrKeyNotFound
	}
	return it.snapshot(), nil
}

// Set stores value under key. casCheck, when nonzero, must match the
// current CAS or ErrCASMismatch is returned ("the server will then
// check this ID against the current ID in the server", §3.1.1).
// Writing to a hard-locked document requires the lock-holder's CAS.
func (h *HashTable) Set(ctx context.Context, key string, value []byte, flags uint32, expiry int64, casCheck uint64, now int64) (Item, error) {
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	return h.storeStriped(ctx, st, key, value, flags, expiry, casCheck, now, storeSet)
}

// Add stores value only if the key does not already exist.
func (h *HashTable) Add(ctx context.Context, key string, value []byte, flags uint32, expiry int64, now int64) (Item, error) {
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	return h.storeStriped(ctx, st, key, value, flags, expiry, 0, now, storeAdd)
}

// Replace stores value only if the key already exists.
func (h *HashTable) Replace(ctx context.Context, key string, value []byte, flags uint32, expiry int64, casCheck uint64, now int64) (Item, error) {
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	return h.storeStriped(ctx, st, key, value, flags, expiry, casCheck, now, storeReplace)
}

type storeMode int

const (
	storeSet storeMode = iota
	storeAdd
	storeReplace
)

// storeStriped runs under st's lock (st owns key).
func (h *HashTable) storeStriped(ctx context.Context, st *stripe, key string, value []byte, flags uint32, expiry int64, casCheck uint64, now int64, mode storeMode) (Item, error) {
	it, exists := st.items[key]
	if exists && (it.Deleted || it.expired(now)) {
		if it.expired(now) && !it.Deleted {
			mExpirations.Inc()
			h.deleteStriped(ctx, st, it)
		}
		exists = false
		it = st.items[key] // tombstone (possibly just created)
	}
	switch mode {
	case storeAdd:
		if exists {
			return Item{}, ErrKeyExists
		}
	case storeReplace:
		if !exists {
			return Item{}, ErrKeyNotFound
		}
	}
	if exists && it.locked(now) {
		// A locked doc is only writable with the CAS returned by
		// GetAndLock; a correct CAS write also releases the lock.
		if casCheck != it.CAS {
			return Item{}, ErrLocked
		}
	} else if casCheck != 0 {
		if !exists {
			return Item{}, ErrKeyNotFound
		}
		if it.CAS != casCheck {
			return Item{}, ErrCASMismatch
		}
	}

	var revSeqno uint64 = 1
	if it != nil {
		revSeqno = it.RevSeqno + 1
	}
	nit := &Item{
		Key:      key,
		Value:    value,
		CAS:      NextCAS(),
		RevSeqno: revSeqno,
		Flags:    flags,
		Expiry:   expiry,
		Resident: true,
	}
	h.commitStriped(ctx, st, key, it, nit)
	return nit.snapshot(), nil
}

// Delete tombstones the document. casCheck semantics match Set.
func (h *HashTable) Delete(ctx context.Context, key string, casCheck uint64, now int64) (Item, error) {
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	it, ok := st.items[key]
	if !ok || it.Deleted || it.expired(now) {
		if ok && it.expired(now) && !it.Deleted {
			mExpirations.Inc()
			h.deleteStriped(ctx, st, it)
		}
		return Item{}, ErrKeyNotFound
	}
	if it.locked(now) && casCheck != it.CAS {
		return Item{}, ErrLocked
	}
	if casCheck != 0 && it.CAS != casCheck {
		return Item{}, ErrCASMismatch
	}
	return h.deleteStriped(ctx, st, it), nil
}

// deleteStriped tombstones it and notifies observers. Runs under the
// stripe lock.
func (h *HashTable) deleteStriped(ctx context.Context, st *stripe, it *Item) Item {
	nit := &Item{
		Key:      it.Key,
		CAS:      NextCAS(),
		RevSeqno: it.RevSeqno + 1,
		Deleted:  true,
	}
	h.commitStriped(ctx, st, it.Key, it, nit)
	return nit.snapshot()
}

// commitStriped is the sequencing section: holding st's lock, it
// enters seqMu to assign nit's seqno, install it, and emit it to the
// observer in one atomic step. Because every mutation passes through
// here and seqno draw + emission happen under the same seqMu hold,
// the observer's callback order is exactly seqno order.
//
// Lock order: stripe.mu (held by caller) → seqMu. Nothing acquires a
// stripe lock while holding seqMu, so the order is acyclic.
func (h *HashTable) commitStriped(ctx context.Context, st *stripe, key string, old, nit *Item) {
	h.seqMu.Lock()
	nit.Seqno = h.nextSeqno.Add(1)
	h.installStriped(st, key, old, nit)
	if h.onMutate != nil {
		h.onMutate(ctx, nit.snapshot())
	}
	h.seqMu.Unlock()
}

// installStriped swaps old (may be nil) for nit under key, maintaining
// the atomic accounting. Runs under the stripe lock.
func (h *HashTable) installStriped(st *stripe, key string, old, nit *Item) {
	if old != nil {
		h.memUsed.Add(-old.memSize())
		if old.Expiry != 0 {
			h.expiring.Add(-1)
		}
		if old.Deleted {
			h.tombCount.Add(-1)
		} else {
			h.itemCount.Add(-1)
			if !old.Resident {
				h.nonResident.Add(-1)
			}
		}
	}
	st.items[key] = nit
	h.memUsed.Add(nit.memSize())
	if nit.Expiry != 0 {
		h.expiring.Add(1)
	}
	if nit.Deleted {
		h.tombCount.Add(1)
	} else {
		h.itemCount.Add(1)
		if !nit.Resident {
			h.nonResident.Add(1)
		}
	}
}

// Append concatenates data after the existing raw value — the
// memcached-heritage byte-level operation. The document must exist.
func (h *HashTable) Append(ctx context.Context, key string, data []byte, casCheck uint64, now int64) (Item, error) {
	return h.concat(ctx, key, data, casCheck, now, false)
}

// Prepend concatenates data before the existing raw value.
func (h *HashTable) Prepend(ctx context.Context, key string, data []byte, casCheck uint64, now int64) (Item, error) {
	return h.concat(ctx, key, data, casCheck, now, true)
}

func (h *HashTable) concat(ctx context.Context, key string, data []byte, casCheck uint64, now int64, front bool) (Item, error) {
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	it, exists := st.items[key]
	if !exists || it.Deleted || it.expired(now) {
		return Item{}, ErrKeyNotFound
	}
	if !it.Resident {
		return Item{}, ErrValueEvicted
	}
	var nv []byte
	if front {
		nv = append(append([]byte{}, data...), it.Value...)
	} else {
		nv = append(append([]byte{}, it.Value...), data...)
	}
	return h.storeStriped(ctx, st, key, nv, it.Flags, it.Expiry, casCheck, now, storeSet)
}

// Touch updates the expiry without changing the value.
func (h *HashTable) Touch(key string, expiry int64, now int64) (Item, error) {
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	it, ok := st.items[key]
	if !ok || it.Deleted || it.expired(now) {
		return Item{}, ErrKeyNotFound
	}
	if it.locked(now) {
		return Item{}, ErrLocked
	}
	it.Expiry = expiry
	return it.snapshot(), nil
}

// GetAndLock returns the document and takes the hard document-level
// lock for lockSeconds ("this lock will be released after a certain
// timeout to avoid deadlocks", §3.1.1). The returned CAS is the lock
// token: a Set/Delete/Unlock with it releases the lock.
func (h *HashTable) GetAndLock(key string, lockSeconds int64, now int64) (Item, error) {
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	it, ok := st.items[key]
	if !ok || it.Deleted || it.expired(now) {
		return Item{}, ErrKeyNotFound
	}
	if it.locked(now) {
		return Item{}, ErrLocked
	}
	it.lockedUntil = now + lockSeconds
	it.CAS = NextCAS() // lock token differs from the pre-lock CAS
	if !it.Resident {
		return it.snapshot(), ErrValueEvicted
	}
	return it.snapshot(), nil
}

// Unlock releases a hard lock given the lock-token CAS.
func (h *HashTable) Unlock(key string, cas uint64, now int64) error {
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	it, ok := st.items[key]
	if !ok || it.Deleted {
		return ErrKeyNotFound
	}
	if !it.locked(now) {
		return ErrNotLocked
	}
	if it.CAS != cas {
		return ErrLocked
	}
	it.lockedUntil = 0
	return nil
}

// ApplyMeta installs an item with externally supplied metadata (seqno,
// CAS, rev). Replica vBuckets and XDCR consumers use this so the copy
// carries the origin's metadata. The vBucket seqno clock advances to
// cover the applied seqno.
func (h *HashTable) ApplyMeta(ctx context.Context, it Item) {
	BumpCAS(it.CAS)
	st := h.stripeOf(it.Key)
	st.mu.Lock()
	defer st.mu.Unlock()
	old := st.items[it.Key]
	it.Resident = !it.Deleted
	cp := it
	// The applied mutation keeps its origin seqno; the emission still
	// rides the sequencing section so observer order and clock updates
	// stay atomic with the install.
	h.seqMu.Lock()
	h.SetHighSeqno(cp.Seqno)
	h.installStriped(st, it.Key, old, &cp)
	if h.onMutate != nil {
		h.onMutate(ctx, cp.snapshot())
	}
	h.seqMu.Unlock()
}

// ApplyRemote applies a cross-datacenter (XDCR) mutation using the
// paper's conflict resolution (§4.6.1): "the document with the most
// updates is considered the winner. If both clusters have the same
// number of updates for a document, additional metadata fields are
// used to pick the winner." Most-updates = RevSeqno; the tiebreak is
// the CAS. The incoming revision keeps its origin RevSeqno/CAS but is
// assigned a fresh local sequence number, since seqnos are a
// per-vBucket, per-cluster lineage. It reports whether the incoming
// revision won.
func (h *HashTable) ApplyRemote(ctx context.Context, key string, value []byte, deleted bool, cas, revSeqno uint64, flags uint32, expiry int64) bool {
	BumpCAS(cas)
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	old := st.items[key]
	if old != nil {
		if revSeqno < old.RevSeqno {
			return false
		}
		if revSeqno == old.RevSeqno && cas <= old.CAS {
			return false
		}
	}
	nit := &Item{
		Key:      key,
		Value:    value,
		CAS:      cas,
		RevSeqno: revSeqno,
		Flags:    flags,
		Expiry:   expiry,
		Deleted:  deleted,
		Resident: !deleted,
	}
	h.commitStriped(ctx, st, key, old, nit)
	return true
}

// RestoreValue re-installs a value fetched from storage for a
// non-resident item. It is a no-op if the document changed meanwhile
// (compared by CAS).
func (h *HashTable) RestoreValue(key string, cas uint64, value []byte) {
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	it, ok := st.items[key]
	if !ok || it.Deleted || it.Resident || it.CAS != cas {
		return
	}
	h.memUsed.Add(-it.memSize())
	it.Value = value
	it.Resident = true
	h.memUsed.Add(it.memSize())
	h.nonResident.Add(-1)
}

// Restore inserts an item recovered from the storage engine without
// treating it as a new mutation: no observer notification, no
// re-persistence. Used by restart warmup and by full-eviction miss
// fetches. If the key already exists in the table (a concurrent write
// won), Restore is a no-op — the in-memory copy is always newer.
func (h *HashTable) Restore(it Item) {
	BumpCAS(it.CAS)
	st := h.stripeOf(it.Key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, exists := st.items[it.Key]; exists {
		return
	}
	it.Resident = !it.Deleted
	cp := it
	h.SetHighSeqno(cp.Seqno)
	st.items[it.Key] = &cp
	h.memUsed.Add(cp.memSize())
	if cp.Expiry != 0 {
		h.expiring.Add(1)
	}
	if cp.Deleted {
		h.tombCount.Add(1)
	} else {
		h.itemCount.Add(1)
	}
}

// EvictItem removes a clean, unlocked document entirely — key,
// metadata, and value — the "full eviction" option of §4.3.3. The
// document must be recoverable from the storage engine (its seqno at
// or below the persisted watermark). Reports whether it was evicted.
func (h *HashTable) EvictItem(key string, persistedSeqno uint64, now int64) bool {
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	it, ok := st.items[key]
	if !ok || it.locked(now) || it.Seqno > persistedSeqno {
		return false
	}
	delete(st.items, key)
	h.memUsed.Add(-it.memSize())
	if it.Expiry != 0 {
		h.expiring.Add(-1)
	}
	if it.Deleted {
		h.tombCount.Add(-1)
	} else {
		h.itemCount.Add(-1)
		if !it.Resident {
			h.nonResident.Add(-1)
		}
	}
	mEvictionsFull.Inc()
	return true
}

// EvictValue drops the value (keeping key and metadata) if the document
// is clean per the caller's persistence check. Returns bytes freed.
func (h *HashTable) EvictValue(key string) int64 {
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	it, ok := st.items[key]
	if !ok || it.Deleted || !it.Resident {
		return 0
	}
	before := it.memSize()
	it.Value = nil
	it.Resident = false
	freed := before - it.memSize()
	h.memUsed.Add(-freed)
	h.nonResident.Add(1)
	mEvictionsVal.Inc()
	return freed
}

// ForEach calls fn with a snapshot of every live item (no tombstones),
// in unspecified order. fn must not call back into the table. The scan
// is stripe-incremental: each stripe is locked only while it is
// copied, so concurrent operations on other stripes proceed — but the
// view is not a single point in time across stripes.
func (h *HashTable) ForEach(fn func(Item) bool) {
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		snap := make([]Item, 0, len(st.items))
		for _, it := range st.items {
			if !it.Deleted {
				snap = append(snap, it.snapshot())
			}
		}
		st.mu.Unlock()
		for _, it := range snap {
			if !fn(it) {
				return
			}
		}
	}
}

// ForEachAll is ForEach including tombstones, with a consistent
// point-in-time view: all stripes are locked (in ascending index
// order) for the duration of the copy, exactly like the pre-striping
// full-table lock. DCP backfill snapshots need this atomicity — the
// snapshot must contain every mutation with seqno ≤ the max seqno it
// observes, or the stream would dedup (drop) a live mutation.
func (h *HashTable) ForEachAll(fn func(Item) bool) {
	var snap []Item
	for i := range h.stripes {
		h.stripes[i].mu.Lock()
	}
	total := 0
	for i := range h.stripes {
		total += len(h.stripes[i].items)
	}
	snap = make([]Item, 0, total)
	for i := range h.stripes {
		for _, it := range h.stripes[i].items {
			snap = append(snap, it.snapshot())
		}
	}
	for i := len(h.stripes) - 1; i >= 0; i-- {
		h.stripes[i].mu.Unlock()
	}
	for _, it := range snap {
		if !fn(it) {
			return
		}
	}
}

// pagerPass advances NRU clocks and returns keys that are eviction
// candidates (not locked, highest NRU). persistedSeqno guards against
// evicting dirty state. In value-eviction mode only live resident
// documents qualify; in full mode any clean item (including
// already-value-evicted ones and tombstones) may be removed entirely.
// The pass is stripe-incremental so it never stalls the whole table —
// the pager is a background janitor, not a consistency point.
func (h *HashTable) pagerPass(now int64, persistedSeqno uint64, full bool) []string {
	var victims []string
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		for _, it := range st.items {
			if !full && (it.Deleted || !it.Resident) {
				continue
			}
			if it.locked(now) {
				continue
			}
			if it.Seqno > persistedSeqno {
				continue // dirty: not yet on disk, must stay
			}
			if it.nru >= 2 {
				victims = append(victims, it.Key)
			} else {
				it.nru++
			}
		}
		st.mu.Unlock()
	}
	return victims
}
