package cache

import (
	"strconv"

	"couchgo/internal/events"
)

// The item pager implements the paper's value-eviction policy: "By
// default the key and the metadata for every key in the bucket will be
// kept in memory, while the associated values can be evicted based on
// usage." Eviction triggers when the bucket's memory use crosses the
// high watermark and stops once it falls below the low watermark.

// Quota describes a bucket memory quota with its watermarks. The real
// system defaults to high = 85% and low = 75% of the quota.
type Quota struct {
	Bytes int64
	// HighRatio and LowRatio default to 0.85 / 0.75 when zero.
	HighRatio, LowRatio float64
}

func (q Quota) high() int64 {
	r := q.HighRatio
	if r == 0 {
		r = 0.85
	}
	return int64(float64(q.Bytes) * r)
}

func (q Quota) low() int64 {
	r := q.LowRatio
	if r == 0 {
		r = 0.75
	}
	return int64(float64(q.Bytes) * r)
}

// Pager evicts not-recently-used resident values across a set of hash
// tables until memory falls below the low watermark. Only values whose
// mutations have been persisted may be evicted (the value must be
// recoverable from the storage engine).
type Pager struct {
	Quota Quota
	// FullEviction removes whole items (key + metadata + value) instead
	// of just values — §4.3.3: "users also have the option to enable
	// the eviction of the key and metadata based on usage."
	FullEviction bool
}

// MemUsed sums memory accounting over tables.
func MemUsed(tables []*HashTable) int64 {
	var total int64
	for _, t := range tables {
		total += t.Stats().MemUsed
	}
	return total
}

// NeedsEviction reports whether use has crossed the high watermark.
func (p *Pager) NeedsEviction(tables []*HashTable) bool {
	return MemUsed(tables) > p.Quota.high()
}

// Run performs pager passes until memory drops below the low watermark
// or no progress can be made. persistedSeqno gives, per table (parallel
// slice), the highest seqno known durable; dirty values are never
// evicted. It returns the number of values evicted.
func (p *Pager) Run(tables []*HashTable, persistedSeqno []uint64, now int64) int {
	evicted := p.run(tables, persistedSeqno, now)
	if evicted > 0 {
		// Journal the pass: watermark-driven eviction is the signal
		// FlexKV-style tiering decisions hang off, and health's
		// residency check should agree with what actually happened.
		e := events.New(events.CacheEvent, events.SevInfo, "pager eviction pass")
		e.Fields = map[string]string{
			"evicted":        strconv.Itoa(evicted),
			"mem_used":       strconv.FormatInt(MemUsed(tables), 10),
			"low_watermark":  strconv.FormatInt(p.Quota.low(), 10),
			"high_watermark": strconv.FormatInt(p.Quota.high(), 10),
		}
		events.Default.Publish(e)
	}
	return evicted
}

func (p *Pager) run(tables []*HashTable, persistedSeqno []uint64, now int64) int {
	evicted := 0
	low := p.Quota.low()
	for pass := 0; pass < 4; pass++ {
		if MemUsed(tables) <= low {
			break
		}
		progress := false
		for i, t := range tables {
			var ps uint64
			if i < len(persistedSeqno) {
				ps = persistedSeqno[i]
			}
			for _, key := range t.pagerPass(now, ps, p.FullEviction) {
				if p.FullEviction {
					if t.EvictItem(key, ps, now) {
						evicted++
						progress = true
					}
				} else if t.EvictValue(key) > 0 {
					evicted++
					progress = true
				}
				if MemUsed(tables) <= low {
					return evicted
				}
			}
		}
		if !progress && pass >= 2 {
			break
		}
	}
	return evicted
}

// ExpiryPager lazily-expired documents are reaped on access; this pager
// proactively deletes expired documents so tombstones flow to replicas
// and indexes even for never-touched keys.
func ExpiryPager(tables []*HashTable, now int64) int {
	reaped := 0
	for _, t := range tables {
		// The common case — no document in the table carries a TTL —
		// must not cost a full-table scan every pager tick.
		if t.expiring.Load() == 0 {
			continue
		}
		var expired []string
		t.ForEach(func(it Item) bool {
			if it.Expiry != 0 && now >= it.Expiry {
				expired = append(expired, it.Key)
			}
			return true
		})
		for _, key := range expired {
			if _, err := t.Get(key, now); err == ErrKeyNotFound {
				reaped++ // Get performed the lazy delete
			}
		}
	}
	return reaped
}
