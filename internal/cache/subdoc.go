package cache

import (
	"context"
	"errors"
	"fmt"

	"couchgo/internal/value"
)

// Sub-document operations: read or mutate one path inside a JSON
// document atomically, without shipping the whole document to the
// client (the paper notes its DML statements "support sub-document
// level lookups and updates"; the KV API exposes the same capability).

// Sub-document errors.
var (
	ErrPathInvalid  = errors.New("cache: invalid sub-document path")
	ErrPathNotFound = errors.New("cache: sub-document path not found")
	ErrPathMismatch = errors.New("cache: sub-document path type mismatch")
	ErrNotJSON      = errors.New("cache: document is not JSON")
)

// SubdocGet returns the value at path inside the document.
func (h *HashTable) SubdocGet(key, path string, now int64) (any, error) {
	p, ok := value.ParsePath(path)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrPathInvalid, path)
	}
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	it, exists := st.items[key]
	if !exists || it.Deleted || it.expired(now) {
		return nil, ErrKeyNotFound
	}
	if !it.Resident {
		return nil, ErrValueEvicted
	}
	doc, isJSON := value.Parse(it.Value)
	if !isJSON {
		return nil, ErrNotJSON
	}
	it.nru = 0
	v := p.Eval(doc)
	if value.IsMissing(v) {
		return nil, ErrPathNotFound
	}
	return v, nil
}

// subdocMutate applies fn to the parsed document under the key's
// stripe lock and stores the result through the normal mutation path
// (CAS checks, lock checks, rev/seqno assignment, observer
// notification).
func (h *HashTable) subdocMutate(ctx context.Context, key string, casCheck uint64, now int64, fn func(doc any) (any, error)) (Item, error) {
	st := h.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	it, exists := st.items[key]
	if !exists || it.Deleted || it.expired(now) {
		return Item{}, ErrKeyNotFound
	}
	if !it.Resident {
		return Item{}, ErrValueEvicted
	}
	doc, isJSON := value.Parse(it.Value)
	if !isJSON {
		return Item{}, ErrNotJSON
	}
	nd, err := fn(doc)
	if err != nil {
		return Item{}, err
	}
	return h.storeStriped(ctx, st, key, value.Marshal(nd), it.Flags, it.Expiry, casCheck, now, storeSet)
}

// SubdocSet writes v at path, creating intermediate objects as needed.
func (h *HashTable) SubdocSet(ctx context.Context, key, path string, v any, casCheck uint64, now int64) (Item, error) {
	p, ok := value.ParsePath(path)
	if !ok || p.Len() == 0 {
		return Item{}, fmt.Errorf("%w: %q", ErrPathInvalid, path)
	}
	return h.subdocMutate(ctx, key, casCheck, now, func(doc any) (any, error) {
		nd, applied := p.Set(doc, v)
		if !applied {
			return nil, fmt.Errorf("%w: %q", ErrPathMismatch, path)
		}
		return nd, nil
	})
}

// SubdocRemove deletes the field at path.
func (h *HashTable) SubdocRemove(ctx context.Context, key, path string, casCheck uint64, now int64) (Item, error) {
	p, ok := value.ParsePath(path)
	if !ok || p.Len() == 0 {
		return Item{}, fmt.Errorf("%w: %q", ErrPathInvalid, path)
	}
	return h.subdocMutate(ctx, key, casCheck, now, func(doc any) (any, error) {
		nd, removed := p.Delete(doc)
		if !removed {
			return nil, fmt.Errorf("%w: %q", ErrPathNotFound, path)
		}
		return nd, nil
	})
}

// SubdocArrayAppend appends v to the array at path.
func (h *HashTable) SubdocArrayAppend(ctx context.Context, key, path string, v any, casCheck uint64, now int64) (Item, error) {
	p, ok := value.ParsePath(path)
	if !ok {
		return Item{}, fmt.Errorf("%w: %q", ErrPathInvalid, path)
	}
	return h.subdocMutate(ctx, key, casCheck, now, func(doc any) (any, error) {
		cur := p.Eval(doc)
		arr, isArr := cur.([]any)
		if value.IsMissing(cur) {
			arr = nil // create the array
		} else if !isArr {
			return nil, fmt.Errorf("%w: %q is not an array", ErrPathMismatch, path)
		}
		nd, applied := p.Set(doc, append(arr, v))
		if !applied {
			return nil, fmt.Errorf("%w: %q", ErrPathMismatch, path)
		}
		return nd, nil
	})
}

// SubdocCounter atomically adds delta to the number at path (creating
// it as delta if absent) and returns the new value.
func (h *HashTable) SubdocCounter(ctx context.Context, key, path string, delta float64, casCheck uint64, now int64) (float64, Item, error) {
	p, ok := value.ParsePath(path)
	if !ok || p.Len() == 0 {
		return 0, Item{}, fmt.Errorf("%w: %q", ErrPathInvalid, path)
	}
	var result float64
	it, err := h.subdocMutate(ctx, key, casCheck, now, func(doc any) (any, error) {
		cur := p.Eval(doc)
		switch {
		case value.IsMissing(cur):
			result = delta
		default:
			f, isNum := value.AsNumber(cur)
			if !isNum {
				return nil, fmt.Errorf("%w: %q is not a number", ErrPathMismatch, path)
			}
			result = f + delta
		}
		nd, applied := p.Set(doc, result)
		if !applied {
			return nil, fmt.Errorf("%w: %q", ErrPathMismatch, path)
		}
		return nd, nil
	})
	return result, it, err
}
