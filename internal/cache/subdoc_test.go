package cache

import (
	"context"
	"errors"
	"sync"
	"testing"

	"couchgo/internal/value"
)

func subdocTable(t *testing.T) *HashTable {
	t.Helper()
	h := NewHashTable()
	if _, err := h.Set(bg, "doc", []byte(`{"name": "A", "stats": {"visits": 5}, "tags": ["x"]}`), 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSubdocGet(t *testing.T) {
	h := subdocTable(t)
	v, err := h.SubdocGet("doc", "stats.visits", 0)
	if err != nil || v != 5.0 {
		t.Fatalf("get: %v %v", v, err)
	}
	if _, err := h.SubdocGet("doc", "nope.deep", 0); err != ErrPathNotFound {
		t.Errorf("missing path: %v", err)
	}
	if _, err := h.SubdocGet("ghost", "x", 0); err != ErrKeyNotFound {
		t.Errorf("missing doc: %v", err)
	}
	if _, err := h.SubdocGet("doc", "a[bad", 0); !errors.Is(err, ErrPathInvalid) {
		t.Errorf("bad path: %v", err)
	}
}

func TestSubdocSetAndRemove(t *testing.T) {
	h := subdocTable(t)
	it, err := h.SubdocSet(bg, "doc", "stats.clicks", 9.0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if it.Seqno != 2 || it.RevSeqno != 2 {
		t.Errorf("mutation meta: %+v", it)
	}
	if v, _ := h.SubdocGet("doc", "stats.clicks", 0); v != 9.0 {
		t.Errorf("after set: %v", v)
	}
	// Untouched fields stay.
	if v, _ := h.SubdocGet("doc", "name", 0); v != "A" {
		t.Errorf("sibling: %v", v)
	}
	if _, err := h.SubdocRemove(bg, "doc", "stats.clicks", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.SubdocGet("doc", "stats.clicks", 0); err != ErrPathNotFound {
		t.Errorf("after remove: %v", err)
	}
	if _, err := h.SubdocRemove(bg, "doc", "stats.clicks", 0, 0); !errors.Is(err, ErrPathNotFound) {
		t.Errorf("double remove: %v", err)
	}
	// CAS discipline applies.
	cur, _ := h.GetMeta("doc")
	if _, err := h.SubdocSet(bg, "doc", "x", 1.0, cur.CAS+999, 0); err != ErrCASMismatch {
		t.Errorf("stale cas: %v", err)
	}
	if _, err := h.SubdocSet(bg, "doc", "x", 1.0, cur.CAS, 0); err != nil {
		t.Errorf("fresh cas: %v", err)
	}
}

func TestSubdocArrayAppend(t *testing.T) {
	h := subdocTable(t)
	if _, err := h.SubdocArrayAppend(bg, "doc", "tags", "y", 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _ := h.SubdocGet("doc", "tags", 0)
	if value.Compare(v, []any{"x", "y"}) != 0 {
		t.Fatalf("tags: %v", v)
	}
	// Creates absent arrays.
	if _, err := h.SubdocArrayAppend(bg, "doc", "fresh", 1.0, 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _ = h.SubdocGet("doc", "fresh", 0)
	if value.Compare(v, []any{1.0}) != 0 {
		t.Fatalf("fresh: %v", v)
	}
	// Type mismatch.
	if _, err := h.SubdocArrayAppend(bg, "doc", "name", "z", 0, 0); !errors.Is(err, ErrPathMismatch) {
		t.Errorf("append to string: %v", err)
	}
}

func TestSubdocCounter(t *testing.T) {
	h := subdocTable(t)
	n, _, err := h.SubdocCounter(bg, "doc", "stats.visits", 3, 0, 0)
	if err != nil || n != 8.0 {
		t.Fatalf("counter: %v %v", n, err)
	}
	n, _, _ = h.SubdocCounter(bg, "doc", "stats.visits", -10, 0, 0)
	if n != -2.0 {
		t.Fatalf("negative: %v", n)
	}
	// Created when absent.
	n, _, err = h.SubdocCounter(bg, "doc", "brandnew", 1, 0, 0)
	if err != nil || n != 1.0 {
		t.Fatalf("create: %v %v", n, err)
	}
	// Non-number.
	if _, _, err := h.SubdocCounter(bg, "doc", "name", 1, 0, 0); !errors.Is(err, ErrPathMismatch) {
		t.Errorf("counter on string: %v", err)
	}
}

func TestSubdocCounterIsAtomic(t *testing.T) {
	h := subdocTable(t)
	var wg sync.WaitGroup
	const goroutines, each = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, _, err := h.SubdocCounter(bg, "doc", "stats.visits", 1, 0, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, _ := h.SubdocGet("doc", "stats.visits", 0)
	if v != float64(5+goroutines*each) {
		t.Fatalf("lost updates: %v", v)
	}
}

func TestSubdocOnBinaryDoc(t *testing.T) {
	h := NewHashTable()
	h.Set(bg, "blob", []byte("not json {"), 0, 0, 0, 0)
	if _, err := h.SubdocGet("blob", "x", 0); err != ErrNotJSON {
		t.Errorf("get on binary: %v", err)
	}
	if _, err := h.SubdocSet(bg, "blob", "x", 1.0, 0, 0); err != ErrNotJSON {
		t.Errorf("set on binary: %v", err)
	}
}

func TestSubdocMutationsFlowToObservers(t *testing.T) {
	h := subdocTable(t)
	var seen []uint64
	h.OnMutate(func(_ context.Context, it Item) { seen = append(seen, it.Seqno) })
	h.SubdocSet(bg, "doc", "a", 1.0, 0, 0)
	h.SubdocCounter(bg, "doc", "n", 1, 0, 0)
	if len(seen) != 2 {
		t.Fatalf("observer saw %d mutations", len(seen))
	}
}
