package cache

import (
	"context"
	"strconv"
	"testing"
)

// TestResidentGetZeroAlloc gates the hottest read path: a resident
// cache hit must not allocate at all — the item snapshot is returned
// by value and shares the value bytes.
func TestResidentGetZeroAlloc(t *testing.T) {
	h := NewHashTable()
	if _, err := h.Set(context.Background(), "user4316891766", make([]byte, 1024), 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(1000, func() {
		if _, err := h.Get("user4316891766", 0); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("resident Get allocates %.1f times per op, want 0", n)
	}
}

// TestGetMissZeroAlloc: a clean miss is also allocation-free (error
// values are shared sentinels).
func TestGetMissZeroAlloc(t *testing.T) {
	h := NewHashTable()
	n := testing.AllocsPerRun(1000, func() {
		if _, err := h.Get("absent", 0); err != ErrKeyNotFound {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("Get miss allocates %.1f times per op, want 0", n)
	}
}

// TestSetAllocBudget bounds the cache write path (no observer wired):
// one Item box plus map residency. The budget is a tripwire for
// accidental per-op garbage, not an exact count.
func TestSetAllocBudget(t *testing.T) {
	h := NewHashTable()
	value := make([]byte, 1024)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = "user" + strconv.Itoa(1000000+i)
	}
	i := 0
	n := testing.AllocsPerRun(1000, func() {
		if _, err := h.Set(context.Background(), keys[i%len(keys)], value, 0, 0, 0, 0); err != nil {
			t.Fatal(err)
		}
		i++
	})
	const budget = 4
	if n > budget {
		t.Errorf("cache Set allocates %.1f times per op, budget %d", n, budget)
	}
}

func BenchmarkGetResident(b *testing.B) {
	h := NewHashTable()
	if _, err := h.Set(context.Background(), "user4316891766", make([]byte, 1024), 0, 0, 0, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Get("user4316891766", 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSetOverwrite(b *testing.B) {
	h := NewHashTable()
	value := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Set(context.Background(), "user4316891766", value, 0, 0, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetParallel exercises stripe scaling: concurrent readers of
// different keys should not contend.
func BenchmarkGetParallel(b *testing.B) {
	h := NewHashTable()
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = "user" + strconv.Itoa(1000000+i)
		if _, err := h.Set(context.Background(), keys[i], make([]byte, 128), 0, 0, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := h.Get(keys[i%len(keys)], 0); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
