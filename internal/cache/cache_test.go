package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

var bg = context.Background()

func TestSetGetRoundTrip(t *testing.T) {
	h := NewHashTable()
	it, err := h.Set(bg, "k1", []byte(`{"a":1}`), 7, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if it.Seqno != 1 || it.RevSeqno != 1 || it.CAS == 0 {
		t.Errorf("meta wrong: %+v", it)
	}
	got, err := h.Get("k1", 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Value) != `{"a":1}` || got.Flags != 7 {
		t.Errorf("got %+v", got)
	}
}

func TestGetMissing(t *testing.T) {
	h := NewHashTable()
	if _, err := h.Get("nope", 0); err != ErrKeyNotFound {
		t.Errorf("err = %v", err)
	}
}

func TestSeqnoMonotonicPerMutation(t *testing.T) {
	h := NewHashTable()
	var last uint64
	for i := 0; i < 10; i++ {
		it, err := h.Set(bg, fmt.Sprintf("k%d", i%3), []byte("v"), 0, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if it.Seqno != last+1 {
			t.Fatalf("seqno %d after %d", it.Seqno, last)
		}
		last = it.Seqno
	}
	if h.HighSeqno() != 10 {
		t.Errorf("HighSeqno = %d", h.HighSeqno())
	}
}

func TestCASOptimisticLocking(t *testing.T) {
	h := NewHashTable()
	it1, _ := h.Set(bg, "doc", []byte("v1"), 0, 0, 0, 0)
	// Another client sneaks in a write.
	it2, _ := h.Set(bg, "doc", []byte("v2"), 0, 0, 0, 0)
	// Original client's CAS is now stale.
	if _, err := h.Set(bg, "doc", []byte("v3"), 0, 0, it1.CAS, 0); err != ErrCASMismatch {
		t.Fatalf("stale CAS should fail: %v", err)
	}
	// Re-read and retry, per the paper's protocol.
	if _, err := h.Set(bg, "doc", []byte("v3"), 0, 0, it2.CAS, 0); err != nil {
		t.Fatalf("fresh CAS should succeed: %v", err)
	}
	got, _ := h.Get("doc", 0)
	if string(got.Value) != "v3" {
		t.Errorf("value = %q", got.Value)
	}
	if got.RevSeqno != 3 {
		t.Errorf("revSeqno = %d, want 3", got.RevSeqno)
	}
}

func TestCASOnMissingKey(t *testing.T) {
	h := NewHashTable()
	if _, err := h.Set(bg, "ghost", []byte("v"), 0, 0, 42, 0); err != ErrKeyNotFound {
		t.Errorf("err = %v", err)
	}
}

func TestAddReplaceSemantics(t *testing.T) {
	h := NewHashTable()
	if _, err := h.Replace(bg, "k", []byte("v"), 0, 0, 0, 0); err != ErrKeyNotFound {
		t.Errorf("Replace on missing: %v", err)
	}
	if _, err := h.Add(bg, "k", []byte("v"), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Add(bg, "k", []byte("v2"), 0, 0, 0); err != ErrKeyExists {
		t.Errorf("Add on existing: %v", err)
	}
	if _, err := h.Replace(bg, "k", []byte("v2"), 0, 0, 0, 0); err != nil {
		t.Errorf("Replace on existing: %v", err)
	}
}

func TestDeleteCreatesTombstone(t *testing.T) {
	h := NewHashTable()
	h.Set(bg, "k", []byte("v"), 0, 0, 0, 0)
	del, err := h.Delete(bg, "k", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !del.Deleted || del.Seqno != 2 || del.RevSeqno != 2 {
		t.Errorf("tombstone meta: %+v", del)
	}
	if _, err := h.Get("k", 0); err != ErrKeyNotFound {
		t.Errorf("Get after delete: %v", err)
	}
	// Metadata survives for conflict resolution.
	meta, err := h.GetMeta("k")
	if err != nil || !meta.Deleted {
		t.Errorf("GetMeta after delete: %+v, %v", meta, err)
	}
	// Re-creating continues the rev lineage.
	it, _ := h.Set(bg, "k", []byte("v2"), 0, 0, 0, 0)
	if it.RevSeqno != 3 {
		t.Errorf("revSeqno after resurrect = %d, want 3", it.RevSeqno)
	}
	st := h.Stats()
	if st.Items != 1 || st.Tombstones != 0 {
		t.Errorf("stats after resurrect: %+v", st)
	}
}

func TestDeleteWithWrongCAS(t *testing.T) {
	h := NewHashTable()
	h.Set(bg, "k", []byte("v"), 0, 0, 0, 0)
	if _, err := h.Delete(bg, "k", 999999, 0); err != ErrCASMismatch {
		t.Errorf("err = %v", err)
	}
	if _, err := h.Delete(bg, "zz", 0, 0); err != ErrKeyNotFound {
		t.Errorf("err = %v", err)
	}
}

func TestExpiryLazyReap(t *testing.T) {
	h := NewHashTable()
	h.Set(bg, "k", []byte("v"), 0, 50, 0, 10) // expires at t=50
	if _, err := h.Get("k", 49); err != nil {
		t.Fatalf("not yet expired: %v", err)
	}
	if _, err := h.Get("k", 50); err != ErrKeyNotFound {
		t.Fatalf("expired: %v", err)
	}
	// The reap was a real deletion: tombstone with a new seqno.
	meta, err := h.GetMeta("k")
	if err != nil || !meta.Deleted {
		t.Fatalf("expiry should tombstone: %+v %v", meta, err)
	}
	if meta.Seqno != 2 {
		t.Errorf("expiry delete seqno = %d", meta.Seqno)
	}
}

func TestSetOverwritesExpired(t *testing.T) {
	h := NewHashTable()
	h.Set(bg, "k", []byte("v"), 0, 50, 0, 10)
	// CAS write against an expired doc fails as not-found.
	it, _ := h.GetMeta("k")
	if _, err := h.Set(bg, "k", []byte("v2"), 0, 0, it.CAS, 60); err != ErrKeyNotFound {
		t.Errorf("CAS set on expired doc: %v", err)
	}
	if _, err := h.Set(bg, "k", []byte("v2"), 0, 0, 0, 60); err != nil {
		t.Errorf("plain set on expired doc: %v", err)
	}
}

func TestTouch(t *testing.T) {
	h := NewHashTable()
	h.Set(bg, "k", []byte("v"), 0, 50, 0, 10)
	if _, err := h.Touch("k", 500, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get("k", 100); err != nil {
		t.Errorf("doc should survive after touch: %v", err)
	}
	if _, err := h.Touch("zz", 10, 0); err != ErrKeyNotFound {
		t.Errorf("touch missing: %v", err)
	}
}

func TestGetAndLock(t *testing.T) {
	h := NewHashTable()
	h.Set(bg, "k", []byte("v"), 0, 0, 0, 100)
	locked, err := h.GetAndLock("k", 15, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Second locker fails.
	if _, err := h.GetAndLock("k", 15, 101); err != ErrLocked {
		t.Errorf("double lock: %v", err)
	}
	// Plain writes and deletes are blocked.
	if _, err := h.Set(bg, "k", []byte("x"), 0, 0, 0, 101); err != ErrLocked {
		t.Errorf("set while locked: %v", err)
	}
	if _, err := h.Delete(bg, "k", 0, 101); err != ErrLocked {
		t.Errorf("delete while locked: %v", err)
	}
	if _, err := h.Touch("k", 10, 101); err != ErrLocked {
		t.Errorf("touch while locked: %v", err)
	}
	// Write with the lock token succeeds and releases the lock.
	if _, err := h.Set(bg, "k", []byte("x"), 0, 0, locked.CAS, 101); err != nil {
		t.Fatalf("set with lock CAS: %v", err)
	}
	if _, err := h.Set(bg, "k", []byte("y"), 0, 0, 0, 102); err != nil {
		t.Errorf("lock should be released after CAS write: %v", err)
	}
}

func TestLockTimesOut(t *testing.T) {
	h := NewHashTable()
	h.Set(bg, "k", []byte("v"), 0, 0, 0, 100)
	h.GetAndLock("k", 15, 100)
	// "This lock will be released after a certain timeout to avoid
	// deadlocks."
	if _, err := h.Set(bg, "k", []byte("x"), 0, 0, 0, 115); err != nil {
		t.Errorf("lock should expire at t=115: %v", err)
	}
}

func TestUnlock(t *testing.T) {
	h := NewHashTable()
	h.Set(bg, "k", []byte("v"), 0, 0, 0, 100)
	locked, _ := h.GetAndLock("k", 15, 100)
	if err := h.Unlock("k", 123456, 101); err != ErrLocked {
		t.Errorf("unlock with wrong token: %v", err)
	}
	if err := h.Unlock("k", locked.CAS, 101); err != nil {
		t.Fatal(err)
	}
	if err := h.Unlock("k", locked.CAS, 101); err != ErrNotLocked {
		t.Errorf("double unlock: %v", err)
	}
	if _, err := h.Set(bg, "k", []byte("x"), 0, 0, 0, 101); err != nil {
		t.Errorf("set after unlock: %v", err)
	}
	if err := h.Unlock("zz", 1, 0); err != ErrKeyNotFound {
		t.Errorf("unlock missing: %v", err)
	}
}

func TestApplyMetaReplicaPath(t *testing.T) {
	h := NewHashTable()
	h.ApplyMeta(bg, Item{Key: "k", Value: []byte("v"), CAS: 77, RevSeqno: 5, Seqno: 42})
	got, err := h.Get("k", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.CAS != 77 || got.RevSeqno != 5 || got.Seqno != 42 {
		t.Errorf("meta not preserved: %+v", got)
	}
	if h.HighSeqno() != 42 {
		t.Errorf("seqno clock should follow applied seqno: %d", h.HighSeqno())
	}
	// Promotion: new active continues numbering after the replica state.
	it, _ := h.Set(bg, "k2", []byte("v"), 0, 0, 0, 0)
	if it.Seqno != 43 {
		t.Errorf("next seqno = %d, want 43", it.Seqno)
	}
}

func TestEvictAndRestoreValue(t *testing.T) {
	h := NewHashTable()
	it, _ := h.Set(bg, "k", []byte("payload"), 0, 0, 0, 0)
	if freed := h.EvictValue("k"); freed <= 0 {
		t.Fatal("evict freed nothing")
	}
	got, err := h.Get("k", 0)
	if err != ErrValueEvicted {
		t.Fatalf("expected ErrValueEvicted, got %v", err)
	}
	if got.CAS != it.CAS {
		t.Error("metadata should survive eviction")
	}
	if h.Stats().NonResident != 1 {
		t.Error("stats should count non-resident item")
	}
	h.RestoreValue("k", it.CAS, []byte("payload"))
	got, err = h.Get("k", 0)
	if err != nil || string(got.Value) != "payload" {
		t.Errorf("after restore: %+v %v", got, err)
	}
	// Restore with a stale CAS is ignored.
	h.EvictValue("k")
	h.RestoreValue("k", 999, []byte("other"))
	if _, err := h.Get("k", 0); err != ErrValueEvicted {
		t.Error("stale restore should be ignored")
	}
}

func TestOnMutateOrderedFeed(t *testing.T) {
	h := NewHashTable()
	var seqnos []uint64
	h.OnMutate(func(_ context.Context, it Item) { seqnos = append(seqnos, it.Seqno) })
	h.Set(bg, "a", []byte("1"), 0, 0, 0, 0)
	h.Set(bg, "b", []byte("2"), 0, 0, 0, 0)
	h.Delete(bg, "a", 0, 0)
	if len(seqnos) != 3 {
		t.Fatalf("observer saw %d mutations", len(seqnos))
	}
	for i, s := range seqnos {
		if s != uint64(i+1) {
			t.Fatalf("mutation %d has seqno %d", i, s)
		}
	}
}

func TestConcurrentMutationsKeepInvariants(t *testing.T) {
	h := NewHashTable()
	var mu sync.Mutex
	var feed []uint64
	h.OnMutate(func(_ context.Context, it Item) {
		mu.Lock()
		feed = append(feed, it.Seqno)
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g*50+i)%17)
				switch i % 3 {
				case 0, 1:
					h.Set(bg, key, []byte("v"), 0, 0, 0, 0)
				case 2:
					h.Delete(bg, key, 0, 0)
				}
			}
		}(g)
	}
	wg.Wait()
	if uint64(len(feed)) != h.HighSeqno() {
		t.Fatalf("feed length %d != high seqno %d", len(feed), h.HighSeqno())
	}
	// The ordered feed must be exactly 1..N in order.
	for i, s := range feed {
		if s != uint64(i+1) {
			t.Fatalf("feed[%d] = %d; mutation feed out of order", i, s)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	h := NewHashTable()
	if st := h.Stats(); st.Items != 0 || st.MemUsed != 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	h.Set(bg, "a", []byte("xxxx"), 0, 0, 0, 0)
	h.Set(bg, "b", []byte("yyyy"), 0, 0, 0, 0)
	st := h.Stats()
	if st.Items != 2 || st.MemUsed <= 0 {
		t.Errorf("stats: %+v", st)
	}
	h.Delete(bg, "a", 0, 0)
	st2 := h.Stats()
	if st2.Items != 1 || st2.Tombstones != 1 {
		t.Errorf("stats after delete: %+v", st2)
	}
	if st2.MemUsed >= st.MemUsed {
		t.Error("tombstone should use less memory than live doc")
	}
}

func TestPagerEvictsUnderPressure(t *testing.T) {
	h := NewHashTable()
	val := make([]byte, 1000)
	for i := 0; i < 100; i++ {
		h.Set(bg, fmt.Sprintf("doc-%03d", i), val, 0, 0, 0, 0)
	}
	tables := []*HashTable{h}
	used := MemUsed(tables)
	p := &Pager{Quota: Quota{Bytes: used / 2}}
	if !p.NeedsEviction(tables) {
		t.Fatal("should need eviction")
	}
	// Nothing persisted yet: pager must not evict dirty values.
	if n := p.Run(tables, []uint64{0}, 0); n != 0 {
		t.Fatalf("evicted %d dirty values", n)
	}
	// Everything persisted: pager can now evict.
	n := p.Run(tables, []uint64{h.HighSeqno()}, 0)
	if n == 0 {
		t.Fatal("pager evicted nothing")
	}
	if MemUsed(tables) > p.Quota.high() {
		t.Errorf("still above high watermark after pager: %d > %d", MemUsed(tables), p.Quota.high())
	}
	// Keys and metadata are all still present.
	st := h.Stats()
	if st.Items != 100 {
		t.Errorf("eviction lost items: %+v", st)
	}
}

func TestPagerSkipsRecentlyUsed(t *testing.T) {
	h := NewHashTable()
	val := make([]byte, 1000)
	for i := 0; i < 20; i++ {
		h.Set(bg, fmt.Sprintf("doc-%02d", i), val, 0, 0, 0, 0)
	}
	// Heat up doc-00 by touching it during pager passes.
	p := &Pager{Quota: Quota{Bytes: 1}} // force maximal eviction
	for i := 0; i < 3; i++ {
		h.Get("doc-00", 0)
		p.Run([]*HashTable{h}, []uint64{h.HighSeqno()}, 0)
	}
	if _, err := h.Get("doc-01", 0); !errors.Is(err, ErrValueEvicted) {
		t.Errorf("cold doc should be evicted: %v", err)
	}
}

func TestExpiryPager(t *testing.T) {
	h := NewHashTable()
	h.Set(bg, "stay", []byte("v"), 0, 0, 0, 0)
	h.Set(bg, "go1", []byte("v"), 0, 50, 0, 0)
	h.Set(bg, "go2", []byte("v"), 0, 60, 0, 0)
	if n := ExpiryPager([]*HashTable{h}, 100); n != 2 {
		t.Fatalf("reaped %d, want 2", n)
	}
	if st := h.Stats(); st.Items != 1 || st.Tombstones != 2 {
		t.Errorf("stats after expiry pager: %+v", st)
	}
}

func TestNextCASMonotone(t *testing.T) {
	a := NextCAS()
	b := NextCAS()
	if b <= a {
		t.Error("CAS must increase")
	}
}

func TestAppendPrepend(t *testing.T) {
	h := NewHashTable()
	h.Set(bg, "k", []byte("middle"), 0, 0, 0, 0)
	if _, err := h.Append(bg, "k", []byte("-end"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Prepend(bg, "k", []byte("start-"), 0, 0); err != nil {
		t.Fatal(err)
	}
	it, _ := h.Get("k", 0)
	if string(it.Value) != "start-middle-end" {
		t.Fatalf("value: %q", it.Value)
	}
	if it.RevSeqno != 3 {
		t.Errorf("concat ops must be real mutations: rev %d", it.RevSeqno)
	}
	if _, err := h.Append(bg, "ghost", []byte("x"), 0, 0); err != ErrKeyNotFound {
		t.Errorf("append missing: %v", err)
	}
	// CAS discipline.
	if _, err := h.Append(bg, "k", []byte("x"), 12345, 0); err != ErrCASMismatch {
		t.Errorf("stale cas: %v", err)
	}
}
