// Distributed tracing: wire propagation contexts, foreign-rooted
// trace portions, the per-node export surface, and cross-process
// stitching.
//
// One logical operation crosses process boundaries (smart client →
// active node → replica), so one trace is physically stored as
// per-process PORTIONS sharing the trace ID: the originating node
// holds the locally-rooted trace, every other node holds a foreign
// portion whose spans were adopted from wire trace contexts. Each
// adopted span remembers the wire ID of the remote span it continues
// (its remote parent); Stitch grafts the portions back into a single
// tree by those references. Trace IDs carry random per-process high
// bits and span wire IDs are process-unique, so references resolve
// unambiguously without any central coordination.
package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"
)

// foreignCap bounds retained foreign portions (FIFO eviction).
const foreignCap = 256

// WireContext returns what an outbound request should propagate: the
// trace ID and this span's process-unique wire ID. ok is false for a
// nil (unsampled) span — propagate nothing.
func (s *Span) WireContext() (traceID uint64, spanID uint32, ok bool) {
	if s == nil {
		return 0, 0, false
	}
	return s.tr.ID, s.wireID, true
}

// RootWire returns the trace ID and the root span's wire ID — the
// context asynchronous fan-out (DCP pushes) propagates, since the
// span that enqueued the work has typically ended. Nil-safe.
func (t *Trace) RootWire() (traceID uint64, spanID uint32, ok bool) {
	if t == nil {
		return 0, 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return t.ID, t.originSpan, t.foreign
	}
	return t.ID, t.spans[0].wireID, true
}

// Adopt returns the local portion of remotely-rooted trace id,
// creating it if needed. originSpan is the wire ID of the remote span
// that caused the local work; it parents the portion's first span.
func (tr *Tracer) Adopt(id uint64, originSpan uint32) *Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if t := tr.foreign[id]; t != nil {
		return t
	}
	t := &Trace{ID: id, Start: time.Now(), tracer: tr, foreign: true, originSpan: originSpan}
	tr.foreign[id] = t
	tr.foreignOrder = append(tr.foreignOrder, id)
	if len(tr.foreignOrder) > foreignCap {
		delete(tr.foreign, tr.foreignOrder[0])
		tr.foreignOrder = tr.foreignOrder[1:]
	}
	return t
}

// Join opens a span continuing a remote caller's trace, as a server
// session does when a request frame carries a trace context. The span
// lands in the local foreign portion of trace id, remote-parented at
// wire span parentSpan. An invalid or unsampled context yields a nil
// span and an unchanged ctx — the disabled path costs nothing.
func (tr *Tracer) Join(ctx context.Context, name string, id uint64, parentSpan uint32, sampled bool) (context.Context, *Span) {
	if id == 0 || !sampled {
		return ctx, nil
	}
	t := tr.Adopt(id, parentSpan)
	s := t.joinSpan(name, parentSpan)
	return ContextWith(ctx, s), s
}

// joinSpan appends an adopted span: the portion's first span becomes
// its local root, later ones parent at the root but keep their own
// remote parent so the stitcher can graft each under the exact remote
// span that issued it.
func (t *Trace) joinSpan(name string, parentSpan uint32) *Span {
	s := t.newSpan(name, 0)
	if s == nil {
		return nil
	}
	t.mu.Lock()
	s.remoteParent, s.hasRemote = parentSpan, true
	if s.parent == -1 && t.Op == "" {
		t.Op = name
	}
	t.mu.Unlock()
	return s
}

// --- Export / stitching ---

// SpanExport is one span in a portion's portable form. IDs are wire
// IDs (process-unique), so parent references resolve across portions.
type SpanExport struct {
	ID uint32 `json:"id"`
	// Parent is the wire ID of the local parent span; nil for the
	// portion root.
	Parent *uint32 `json:"parent,omitempty"`
	// RemoteParent is the wire ID of the span on another node that
	// this span continues.
	RemoteParent *uint32      `json:"remote_parent,omitempty"`
	Name         string       `json:"name"`
	StartUnixUS  int64        `json:"start_unix_us"`
	DurationUS   int64        `json:"duration_us"`
	Open         bool         `json:"open,omitempty"`
	Error        string       `json:"error,omitempty"`
	Annotations  []Annotation `json:"annotations,omitempty"`
}

// Export is one node's portion of a trace in portable (JSON) form,
// with absolute timestamps so portions from different nodes align.
type Export struct {
	ID          uint64       `json:"id"`
	Op          string       `json:"op"`
	Node        string       `json:"node,omitempty"`
	Foreign     bool         `json:"foreign,omitempty"`
	StartUnixUS int64        `json:"start_unix_us"`
	DurationUS  int64        `json:"duration_us"`
	Spans       []SpanExport `json:"spans"`
}

// Export renders the trace's local portion for cross-node collection,
// labeled with the exporting node. Safe while spans are still
// arriving.
func (t *Trace) Export(node string) Export {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	d := now.Sub(t.Start)
	if t.done {
		d = t.end.Sub(t.Start)
	}
	e := Export{
		ID: t.ID, Op: t.Op, Node: node, Foreign: t.foreign,
		StartUnixUS: t.Start.UnixMicro(), DurationUS: d.Microseconds(),
		Spans: make([]SpanExport, 0, len(t.spans)),
	}
	for _, s := range t.spans {
		end := s.end
		if s.open {
			end = now
		}
		se := SpanExport{
			ID: s.wireID, Name: s.name,
			StartUnixUS: s.start.UnixMicro(),
			DurationUS:  end.Sub(s.start).Microseconds(),
			Open:        s.open, Error: s.err,
		}
		if s.parent >= 0 && s.parent < len(t.spans) {
			p := t.spans[s.parent].wireID
			se.Parent = &p
		}
		if s.hasRemote {
			rp := s.remoteParent
			se.RemoteParent = &rp
		}
		if len(s.ann) > 0 {
			se.Annotations = append([]Annotation(nil), s.ann...)
		}
		e.Spans = append(e.Spans, se)
	}
	if t.dropped > 0 && len(e.Spans) > 0 {
		e.Spans[0].Annotations = append(e.Spans[0].Annotations,
			Annotation{Key: "spans_dropped", Value: fmt.Sprint(t.dropped)})
	}
	return e
}

// Stitch grafts per-node portions of one trace into a single span
// tree. The locally-rooted portion (Foreign false) anchors the tree;
// foreign spans attach under the remote span they reference, falling
// back to the global root (with a stitch annotation) when the
// reference is unresolvable — a portion may have been evicted or its
// node unreachable. Portions are network input: every reference is
// bounds-checked, never trusted.
func Stitch(portions []Export) *Node {
	rootIdx := -1
	for i, p := range portions {
		if !p.Foreign && len(p.Spans) > 0 {
			rootIdx = i
			break
		}
	}
	if rootIdx == -1 {
		for i, p := range portions {
			if len(p.Spans) == 0 {
				continue
			}
			if rootIdx == -1 || p.StartUnixUS < portions[rootIdx].StartUnixUS {
				rootIdx = i
			}
		}
	}
	if rootIdx == -1 {
		return nil
	}
	base := portions[rootIdx].StartUnixUS

	// Build nodes and per-portion wire-ID indexes.
	nodes := make([][]*Node, len(portions))
	index := make([]map[uint32]*Node, len(portions))
	for i, p := range portions {
		nodes[i] = make([]*Node, len(p.Spans))
		index[i] = make(map[uint32]*Node, len(p.Spans))
		for j, s := range p.Spans {
			n := &Node{
				Name: s.Name, Node: p.Node,
				StartUS: s.StartUnixUS - base, DurationUS: s.DurationUS,
				Open: s.Open, Error: s.Error,
			}
			if len(s.Annotations) > 0 {
				n.Annotations = append([]Annotation(nil), s.Annotations...)
			}
			nodes[i][j] = n
			if _, dup := index[i][s.ID]; !dup {
				index[i][s.ID] = n
			}
		}
	}
	var root *Node
	for _, s := range portions[rootIdx].Spans {
		if s.Parent == nil {
			root = index[rootIdx][s.ID]
			break
		}
	}
	if root == nil {
		root = nodes[rootIdx][0]
	}

	// resolve finds wire ID id in another portion, preferring the root
	// portion (the usual origin), never the asking portion itself.
	resolve := func(self int, id uint32) *Node {
		if self != rootIdx {
			if n := index[rootIdx][id]; n != nil {
				return n
			}
		}
		for i := range portions {
			if i == self || i == rootIdx {
				continue
			}
			if n := index[i][id]; n != nil {
				return n
			}
		}
		return nil
	}

	for i, p := range portions {
		for j, s := range p.Spans {
			n := nodes[i][j]
			if n == root {
				continue
			}
			var parent *Node
			switch {
			case s.RemoteParent != nil && i != rootIdx:
				if parent = resolve(i, *s.RemoteParent); parent == nil {
					n.Annotations = append(n.Annotations,
						Annotation{Key: "stitch", Value: "remote parent missing"})
				}
			case s.Parent != nil:
				parent = index[i][*s.Parent]
			}
			if parent == nil || parent == n {
				parent = root
			}
			parent.Children = append(parent.Children, n)
		}
	}
	sortChildren(root, make(map[*Node]bool))
	return root
}

// sortChildren orders every child list by start offset for stable
// rendering; the seen set guards against hostile reference cycles.
func sortChildren(n *Node, seen map[*Node]bool) {
	if seen[n] {
		return
	}
	seen[n] = true
	sort.SliceStable(n.Children, func(i, j int) bool {
		return n.Children[i].StartUS < n.Children[j].StartUS
	})
	for _, c := range n.Children {
		sortChildren(c, seen)
	}
}

// --- Runtime configuration ---

// Config is the runtime tracing configuration carried by POST
// /traces/config and its cluster-wide broadcast.
type Config struct {
	// Rate samples one root op in Rate (0 disables); nil leaves the
	// rate unchanged.
	Rate *int `json:"rate"`
	// Thresholds sets per-op always-keep latency thresholds, as
	// time.ParseDuration strings; "" keys the default.
	Thresholds map[string]string `json:"thresholds"`
	// Clear drops retained traces.
	Clear bool `json:"clear"`
}

// ApplyConfigJSON strictly decodes and applies a runtime config.
// Unknown fields are rejected with the offending field named, and
// nothing is applied unless the whole payload validates — so a
// cluster-wide broadcast either lands identically on a node or fails
// diagnosably, never half-applies.
func (tr *Tracer) ApplyConfigJSON(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, err
	}
	if dec.More() {
		return Config{}, errors.New("trace: trailing data after config object")
	}
	parsed := make(map[string]time.Duration, len(c.Thresholds))
	for op, ds := range c.Thresholds {
		d, err := time.ParseDuration(ds)
		if err != nil {
			return Config{}, fmt.Errorf("threshold %q: %v", op, err)
		}
		parsed[op] = d
	}
	for op, d := range parsed {
		tr.SetThreshold(op, d)
	}
	if c.Rate != nil {
		tr.SetRate(*c.Rate)
	}
	if c.Clear {
		tr.Clear()
	}
	return c, nil
}
