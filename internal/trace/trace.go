// Package trace is a lock-light, sampled, context-propagated span
// tracer for following one request across the system's asynchronous
// hops: client routing → cache/vBucket → storage flusher → DCP →
// feed drain → index/query services.
//
// Model: a Trace is an append-only tree of Spans rooted at one
// client-visible operation ("kv:set", "query", "storage:compact").
// Start consults the parent span in the context; with no parent it
// makes a 1-in-rate sampling decision (rate 0 = tracing off, the
// default — the disabled fast path is one context lookup and one
// atomic load). Asynchronous hops that outlive the root — the disk
// flusher, the DCP feed drain, replica apply — attach spans directly
// to the *Trace pointer riding the mutation, parented at the root, so
// a KV write's trace keeps growing after the client call returned.
//
// Finished traces land in a bounded per-op ring (newest wins), plus a
// second always-keep ring for traces whose root exceeded the op's
// latency threshold — the slow-query log generalized to
// slow-anything. Rings hold pointers, so a retained trace still
// renders late-arriving async spans.
//
// Every Span method is nil-receiver safe: unsampled call sites carry
// a nil span and pay nothing.
package trace

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Ring and span-tree bounds.
const (
	recentSize = 64  // finished traces kept per root op
	slowSize   = 64  // over-threshold traces kept per root op
	maxSpans   = 512 // spans per trace; excess is counted, not kept

	// DefaultSlowThreshold is the always-keep latency threshold used
	// for ops without an explicit SetThreshold.
	DefaultSlowThreshold = 100 * time.Millisecond
)

// Annotation is one key/value pair attached to a span.
type Annotation struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Trace is one sampled request: an ID, the root operation name, and
// an append-only span tree.
type Trace struct {
	// ID is unique within the owning Tracer's lifetime.
	ID uint64
	// Op is the root span's name; finished traces ring by it.
	Op string
	// Start is the root span's start time.
	Start time.Time

	tracer *Tracer

	// foreign marks a locally-held portion of a trace rooted on
	// another node (adopted from a wire trace context); originSpan is
	// the wire ID of the remote span that caused the local work.
	foreign    bool
	originSpan uint32

	mu      sync.Mutex
	spans   []*Span
	dropped int
	end     time.Time
	done    bool
	slow    bool
}

// Span is one timed operation within a trace. The zero of a call
// site is a nil *Span (unsampled); every method tolerates it.
type Span struct {
	tr     *Trace
	idx    int
	parent int // index into tr.spans; -1 for the root
	// wireID is the process-unique span ID used in wire trace contexts
	// and exports; remoteParent (when hasRemote) is the wire ID of the
	// span, on another node, this span continues.
	wireID       uint32
	remoteParent uint32
	hasRemote    bool
	name         string
	start        time.Time

	// Mutable fields below are guarded by tr.mu once the span is
	// published into tr.spans.
	end  time.Time
	ann  []Annotation
	err  string
	open bool
}

type ctxKey struct{}

// ContextWith returns ctx carrying s as the current span. A nil span
// returns ctx unchanged (no allocation on the unsampled path).
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// TraceFromContext returns the trace the current span belongs to, or
// nil. Mutation paths use it to stamp the trace onto DCP batches.
func TraceFromContext(ctx context.Context) *Trace {
	return FromContext(ctx).Trace()
}

// Tracer samples, collects, and retains traces.
type Tracer struct {
	rate atomic.Int64  // sample 1 in rate roots; <=0 disables
	seq  atomic.Uint64 // trace ID source (low 32 bits of the ID)
	tick atomic.Uint64 // sampling counter

	// base is ORed into every trace ID: random per-Tracer high bits so
	// IDs minted by different processes never collide — a prerequisite
	// for stitching one distributed trace out of per-node portions.
	base uint64
	// spanSeq mints process-unique span IDs (random start, sequential)
	// for cross-process parent references; a span's wire ID must name
	// it unambiguously among every node's portion of the same trace.
	spanSeq atomic.Uint32

	mu         sync.Mutex
	thresholds map[string]time.Duration
	defThresh  time.Duration
	ops        map[string]*opRing
	// foreign holds local portions of remotely-rooted traces (adopted
	// from wire trace contexts), keyed by trace ID, FIFO-bounded.
	foreign      map[uint64]*Trace
	foreignOrder []uint64
}

// opRing retains finished traces for one root op: a ring of the most
// recent plus a ring of those over the slow threshold.
type opRing struct {
	recent    []*Trace
	recentPos int
	slow      []*Trace
	slowPos   int
	slowTotal uint64
}

// New creates a disabled tracer (rate 0) with the default slow
// threshold.
func New() *Tracer {
	tr := &Tracer{
		thresholds: make(map[string]time.Duration),
		defThresh:  DefaultSlowThreshold,
		ops:        make(map[string]*opRing),
		foreign:    make(map[uint64]*Trace),
	}
	for tr.base == 0 {
		tr.base = uint64(rand.Uint32()) << 32
	}
	tr.spanSeq.Store(rand.Uint32())
	return tr
}

// Default is the process-wide tracer used by the package-level
// functions and all couchgo layers.
var Default = New()

// SetRate enables sampling of one in n root operations; n <= 0
// disables tracing entirely.
func (tr *Tracer) SetRate(n int) { tr.rate.Store(int64(n)) }

// Rate reports the sampling rate (0 = disabled).
func (tr *Tracer) Rate() int { return int(tr.rate.Load()) }

// SetThreshold sets the always-keep latency threshold for one root
// op; d <= 0 disables always-keep for that op. An op without an
// explicit threshold uses the default, which op "" replaces.
func (tr *Tracer) SetThreshold(op string, d time.Duration) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if op == "" {
		tr.defThresh = d
		return
	}
	tr.thresholds[op] = d
}

// Thresholds returns the per-op threshold overrides plus the default
// under the "" key.
func (tr *Tracer) Thresholds() map[string]time.Duration {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make(map[string]time.Duration, len(tr.thresholds)+1)
	out[""] = tr.defThresh
	for op, d := range tr.thresholds {
		out[op] = d
	}
	return out
}

// Start returns a span for name: a child when ctx already carries a
// span, else a sampled new root (possibly nil). The returned context
// carries the span for downstream calls.
func (tr *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		s := parent.tr.newSpan(name, parent.idx)
		return ContextWith(ctx, s), s
	}
	n := tr.rate.Load()
	if n <= 0 || tr.tick.Add(1)%uint64(n) != 0 {
		return ctx, nil
	}
	return tr.newRoot(ctx, name)
}

// Force is Start minus the sampling tick: when tracing is enabled at
// all, the operation is always traced. For rare, interesting work —
// compaction, rollback recovery — that a 1-in-N coin would miss.
func (tr *Tracer) Force(ctx context.Context, name string) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		s := parent.tr.newSpan(name, parent.idx)
		return ContextWith(ctx, s), s
	}
	if tr.rate.Load() <= 0 {
		return ctx, nil
	}
	return tr.newRoot(ctx, name)
}

func (tr *Tracer) newRoot(ctx context.Context, name string) (context.Context, *Span) {
	t := &Trace{ID: tr.base | (tr.seq.Add(1) & 0xffffffff), Op: name, Start: time.Now(), tracer: tr}
	s := &Span{tr: t, idx: 0, parent: -1, wireID: tr.spanSeq.Add(1), name: name, start: t.Start, open: true}
	t.spans = append(t.spans, s)
	return ContextWith(ctx, s), s
}

// record files a finished trace into its op's rings.
func (tr *Tracer) record(t *Trace, d time.Duration) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	r := tr.ops[t.Op]
	if r == nil {
		r = &opRing{}
		tr.ops[t.Op] = r
	}
	r.recent, r.recentPos = ringPush(r.recent, r.recentPos, t, recentSize)
	th, ok := tr.thresholds[t.Op]
	if !ok {
		th = tr.defThresh
	}
	if th > 0 && d >= th {
		t.mu.Lock()
		t.slow = true
		t.mu.Unlock()
		r.slowTotal++
		r.slow, r.slowPos = ringPush(r.slow, r.slowPos, t, slowSize)
	}
}

func ringPush(buf []*Trace, pos int, t *Trace, max int) ([]*Trace, int) {
	if len(buf) < max {
		return append(buf, t), 0
	}
	buf[pos] = t
	return buf, (pos + 1) % max
}

// Get returns a retained trace by ID, or nil. A locally-rooted trace
// wins over an adopted foreign portion with the same ID (possible
// when a node's client dials itself over the wire). Rings are small;
// this is a linear scan for the debug surface, not a hot path.
func (tr *Tracer) Get(id uint64) *Trace {
	for _, t := range tr.Portions(id) {
		return t
	}
	return nil
}

// Portions returns every distinct locally-retained portion of trace
// id: the locally-rooted trace (if any) first, then adopted foreign
// portions. Usually zero or one entry; two when a node's own smart
// client reached it over the wire.
func (tr *Tracer) Portions(id uint64) []*Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	seen := make(map[*Trace]bool)
	var local, foreign []*Trace
	add := func(t *Trace) {
		if t.ID != id || seen[t] {
			return
		}
		seen[t] = true
		if t.foreign {
			foreign = append(foreign, t)
		} else {
			local = append(local, t)
		}
	}
	for _, r := range tr.ops {
		for _, t := range r.recent {
			add(t)
		}
		for _, t := range r.slow {
			add(t)
		}
	}
	if t := tr.foreign[id]; t != nil {
		add(t)
	}
	return append(local, foreign...)
}

// Summary is one retained trace's listing entry.
type Summary struct {
	ID         uint64    `json:"id"`
	Op         string    `json:"op"`
	Start      time.Time `json:"start"`
	DurationUS int64     `json:"duration_us"`
	Spans      int       `json:"spans"`
	Slow       bool      `json:"slow,omitempty"`
	// Foreign marks a locally-held portion of a remotely-rooted trace.
	Foreign bool `json:"foreign,omitempty"`
}

// Traces lists every retained trace, newest first.
func (tr *Tracer) Traces() []Summary {
	var out []Summary
	for _, t := range tr.retained() {
		out = append(out, t.summary())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// SlowTotal reports how many traces crossed the threshold for op
// since startup (retained or not).
func (tr *Tracer) SlowTotal(op string) uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if r := tr.ops[op]; r != nil {
		return r.slowTotal
	}
	return 0
}

// Slowest returns the retained trace with the largest root duration
// for op ("" = across all ops), or nil.
func (tr *Tracer) Slowest(op string) *Trace {
	var best *Trace
	var bestD time.Duration
	for _, t := range tr.retained() {
		if op != "" && t.Op != op {
			continue
		}
		if d := t.Duration(); best == nil || d > bestD {
			best, bestD = t, d
		}
	}
	return best
}

// Clear drops every retained trace, including adopted foreign
// portions; rate and thresholds persist.
func (tr *Tracer) Clear() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.ops = make(map[string]*opRing)
	tr.foreign = make(map[uint64]*Trace)
	tr.foreignOrder = nil
}

func (tr *Tracer) retained() []*Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	seen := make(map[uint64]bool)
	var out []*Trace
	add := func(ts []*Trace) {
		for _, t := range ts {
			if !seen[t.ID] {
				seen[t.ID] = true
				out = append(out, t)
			}
		}
	}
	for _, r := range tr.ops {
		add(r.recent)
		add(r.slow)
	}
	return out
}

// --- Trace methods ---

// newSpan appends a span under parent; returns nil once the trace is
// at its span cap. The first span of an adopted foreign portion
// becomes its local root (parent -1) regardless of the requested
// parent, inheriting the portion's remote origin span: async hops
// like replica apply call StartSpan on a portion that has no local
// spans yet.
func (t *Trace) newSpan(name string, parent int) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		return nil
	}
	s := &Span{tr: t, idx: len(t.spans), parent: parent, wireID: t.tracer.spanSeq.Add(1), name: name, start: time.Now(), open: true}
	if len(t.spans) == 0 {
		s.parent = -1
		if t.foreign {
			s.remoteParent, s.hasRemote = t.originSpan, true
			if t.Op == "" {
				t.Op = name
			}
		}
	}
	t.spans = append(t.spans, s)
	return s
}

// StartSpan opens a span parented at the trace root. Asynchronous
// hops (flusher, feed drain, replica apply) use it because the span
// that enqueued the work has ended by the time they run. Nil-safe.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0)
}

// Duration is the root span's duration (elapsed-so-far while open).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.end.Sub(t.Start)
	}
	return time.Since(t.Start)
}

// finish retains the trace once its root span has ended.
func (t *Trace) finish(end time.Time) {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.end = end
	t.mu.Unlock()
	t.tracer.record(t, end.Sub(t.Start))
}

func (t *Trace) summary() Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := time.Since(t.Start)
	if t.done {
		d = t.end.Sub(t.Start)
	}
	return Summary{
		ID: t.ID, Op: t.Op, Start: t.Start,
		DurationUS: d.Microseconds(),
		Spans:      len(t.spans),
		Slow:       t.slow,
		Foreign:    t.foreign,
	}
}

// --- Span methods ---

// Trace returns the owning trace; nil for a nil span.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// Child opens a child span without going through a context.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.idx)
}

// End closes the span. Ending the root span finishes (retains) the
// trace; async spans ending later still render.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.tr.mu.Lock()
	if s.open {
		s.open = false
		s.end = now
	}
	root := s.parent == -1
	s.tr.mu.Unlock()
	if root {
		s.tr.finish(now)
	}
}

// Annotate attaches a key/value pair to the span.
func (s *Span) Annotate(key, val string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.ann = append(s.ann, Annotation{Key: key, Value: val})
	s.tr.mu.Unlock()
}

// Error tags the span with a non-nil error.
func (s *Span) Error(err error) {
	if s == nil || err == nil {
		return
	}
	s.tr.mu.Lock()
	s.err = err.Error()
	s.tr.mu.Unlock()
}

// Completed appends an already-finished child covering [start, now]
// — for call sites that time their phases themselves (the query
// executor's profile records).
func (s *Span) Completed(name string, start time.Time, kv ...string) {
	if s == nil {
		return
	}
	now := time.Now()
	c := s.Child(name)
	if c == nil {
		return
	}
	s.tr.mu.Lock()
	c.start = start
	c.end = now
	c.open = false
	for i := 0; i+1 < len(kv); i += 2 {
		c.ann = append(c.ann, Annotation{Key: kv[i], Value: kv[i+1]})
	}
	s.tr.mu.Unlock()
}

// --- Rendering ---

// Node is one span in the rendered tree.
type Node struct {
	Name string `json:"name"`
	// Node labels the process the span ran in; set by Stitch on
	// cross-process trees, empty on single-process renders.
	Node string `json:"node,omitempty"`
	// StartUS is the span's start offset from the trace start.
	StartUS     int64        `json:"start_us"`
	DurationUS  int64        `json:"duration_us"`
	Open        bool         `json:"open,omitempty"`
	Error       string       `json:"error,omitempty"`
	Annotations []Annotation `json:"annotations,omitempty"`
	Children    []*Node      `json:"children,omitempty"`
}

// Tree renders the span tree. Safe to call while async spans are
// still arriving.
func (t *Trace) Tree() *Node {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	nodes := make([]*Node, len(t.spans))
	for i, s := range t.spans {
		end := s.end
		if s.open {
			end = now
		}
		n := &Node{
			Name:       s.name,
			StartUS:    s.start.Sub(t.Start).Microseconds(),
			DurationUS: end.Sub(s.start).Microseconds(),
			Open:       s.open,
			Error:      s.err,
		}
		if len(s.ann) > 0 {
			n.Annotations = append([]Annotation(nil), s.ann...)
		}
		nodes[i] = n
		if s.parent >= 0 {
			p := nodes[s.parent]
			p.Children = append(p.Children, n)
		}
	}
	if t.dropped > 0 && len(nodes) > 0 {
		nodes[0].Annotations = append(nodes[0].Annotations,
			Annotation{Key: "spans_dropped", Value: fmt.Sprint(t.dropped)})
	}
	if len(nodes) == 0 {
		return nil
	}
	return nodes[0]
}

// Names returns every span name in the trace, in creation order —
// handy for tests asserting a hop appears.
func (t *Trace) Names() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.spans))
	for i, s := range t.spans {
		out[i] = s.name
	}
	return out
}

// Format renders a trace as an indented text tree.
func Format(t *Trace) string {
	if t == nil {
		return "<no trace>"
	}
	root := t.Tree()
	if root == nil {
		return "<no trace>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d op=%s total=%s\n", t.ID, t.Op, t.Duration().Round(time.Microsecond))
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth+1))
		fmt.Fprintf(&b, "%s +%dus %dus", n.Name, n.StartUS, n.DurationUS)
		if n.Open {
			b.WriteString(" (open)")
		}
		for _, a := range n.Annotations {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		if n.Error != "" {
			fmt.Fprintf(&b, " error=%q", n.Error)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

// --- Package-level wrappers over Default ---

// Start begins a span on the default tracer.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return Default.Start(ctx, name)
}

// Force begins an always-sampled root span on the default tracer.
func Force(ctx context.Context, name string) (context.Context, *Span) {
	return Default.Force(ctx, name)
}

// SetRate sets the default tracer's sampling rate.
func SetRate(n int) { Default.SetRate(n) }

// SetThreshold sets a per-op always-keep threshold on the default
// tracer.
func SetThreshold(op string, d time.Duration) { Default.SetThreshold(op, d) }
