package trace

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsNilEverywhere(t *testing.T) {
	tr := New()
	ctx, sp := tr.Start(context.Background(), "kv:get")
	if sp != nil {
		t.Fatalf("rate 0 sampled a span")
	}
	if FromContext(ctx) != nil {
		t.Fatalf("disabled ctx carries a span")
	}
	// Every nil-receiver method must be a no-op, not a panic.
	sp.Annotate("k", "v")
	sp.Error(errors.New("x"))
	sp.Completed("c", time.Now())
	sp.Child("c").End()
	sp.End()
	if sp.Trace().StartSpan("late") != nil {
		t.Fatalf("nil trace produced a span")
	}
	if got := len(tr.Traces()); got != 0 {
		t.Fatalf("retained %d traces, want 0", got)
	}
}

func TestSamplingRate(t *testing.T) {
	tr := New()
	tr.SetRate(4)
	sampled := 0
	for i := 0; i < 40; i++ {
		_, sp := tr.Start(context.Background(), "op")
		if sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 40 at rate 4, want 10", sampled)
	}
}

func TestSpanTreeAndRetention(t *testing.T) {
	tr := New()
	tr.SetRate(1)
	ctx, root := tr.Start(context.Background(), "kv:set")
	if root == nil {
		t.Fatal("rate 1 did not sample")
	}
	root.Annotate("key", "k1")
	cctx, child := tr.Start(ctx, "route")
	child.Annotate("node", "node0")
	_, leaf := tr.Start(cctx, "cache:set")
	leaf.Error(errors.New("boom"))
	leaf.End()
	child.End()
	root.End()

	tc := root.Trace()
	if got := tr.Get(tc.ID); got != tc {
		t.Fatalf("Get(%d) = %v, want the trace", tc.ID, got)
	}
	tree := tc.Tree()
	if tree.Name != "kv:set" || len(tree.Children) != 1 {
		t.Fatalf("bad root: %+v", tree)
	}
	if tree.Children[0].Name != "route" || tree.Children[0].Children[0].Name != "cache:set" {
		t.Fatalf("bad nesting: %+v", tree.Children[0])
	}
	if tree.Children[0].Children[0].Error != "boom" {
		t.Fatalf("error tag lost")
	}
	sums := tr.Traces()
	if len(sums) != 1 || sums[0].Spans != 3 {
		t.Fatalf("summaries = %+v", sums)
	}
}

func TestAsyncSpanAfterRootEnd(t *testing.T) {
	tr := New()
	tr.SetRate(1)
	_, root := tr.Start(context.Background(), "kv:set")
	tc := root.Trace()
	root.End()

	// The flusher/feed hop arrives after the client call finished.
	sp := tc.StartSpan("storage:commit")
	sp.Annotate("items", "3")
	sp.End()

	got := tr.Get(tc.ID)
	names := got.Names()
	want := []string{"kv:set", "storage:commit"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	if got.Tree().Children[0].Open {
		t.Fatalf("async span still open after End")
	}
}

func TestSlowRingAlwaysKeeps(t *testing.T) {
	tr := New()
	tr.SetRate(1)
	tr.SetThreshold("op", 5*time.Millisecond)

	var slowID uint64
	for i := 0; i < recentSize+8; i++ {
		_, sp := tr.Start(context.Background(), "op")
		if i == 0 {
			slowID = sp.Trace().ID
			time.Sleep(10 * time.Millisecond)
		}
		sp.End()
	}
	// The slow first trace fell off the recent ring (recentSize fast
	// traces followed it) but the always-keep ring still resolves it.
	if got := tr.Get(slowID); got == nil {
		t.Fatalf("slow trace %d evicted; want always-keep", slowID)
	}
	if n := tr.SlowTotal("op"); n != 1 {
		t.Fatalf("slowTotal = %d, want 1", n)
	}

	// With a high threshold nothing is slow.
	tr2 := New()
	tr2.SetRate(1)
	tr2.SetThreshold("op", time.Hour)
	_, sp := tr2.Start(context.Background(), "op")
	sp.End()
	if tr2.Traces()[0].Slow {
		t.Fatalf("fast trace marked slow")
	}
}

func TestSlowestAndClear(t *testing.T) {
	tr := New()
	tr.SetRate(1)
	_, fast := tr.Start(context.Background(), "op")
	fast.End()
	_, slow := tr.Start(context.Background(), "op")
	time.Sleep(2 * time.Millisecond)
	slow.End()
	if got := tr.Slowest("op"); got != slow.Trace() {
		t.Fatalf("Slowest = trace %v, want %d", got, slow.Trace().ID)
	}
	if got := tr.Slowest(""); got != slow.Trace() {
		t.Fatalf("Slowest(\"\") missed")
	}
	tr.Clear()
	if len(tr.Traces()) != 0 || tr.Slowest("") != nil {
		t.Fatalf("Clear left traces behind")
	}
}

func TestSpanCapDrops(t *testing.T) {
	tr := New()
	tr.SetRate(1)
	_, root := tr.Start(context.Background(), "op")
	for i := 0; i < maxSpans+10; i++ {
		root.Child("c").End()
	}
	root.End()
	tc := root.Trace()
	tree := tc.Tree()
	if len(tree.Children) != maxSpans-1 {
		t.Fatalf("kept %d children, want %d", len(tree.Children), maxSpans-1)
	}
	found := false
	for _, a := range tree.Annotations {
		if a.Key == "spans_dropped" {
			found = true
		}
	}
	if !found {
		t.Fatalf("drop count not surfaced")
	}
}

func TestCompletedRecordsPhase(t *testing.T) {
	tr := New()
	tr.SetRate(1)
	_, root := tr.Start(context.Background(), "query")
	t0 := time.Now().Add(-3 * time.Millisecond)
	root.Completed("query:scan", t0, "items", "42")
	root.End()
	tree := root.Trace().Tree()
	c := tree.Children[0]
	if c.Name != "query:scan" || c.DurationUS < 2000 {
		t.Fatalf("completed span wrong: %+v", c)
	}
	if len(c.Annotations) != 1 || c.Annotations[0].Value != "42" {
		t.Fatalf("annotations wrong: %+v", c.Annotations)
	}
}

func TestForceBypassesTick(t *testing.T) {
	tr := New()
	tr.SetRate(1000) // ordinary ops essentially never sample
	_, sp := tr.Force(context.Background(), "storage:compact")
	if sp == nil {
		t.Fatalf("Force did not trace while tracing enabled")
	}
	sp.End()
	tr.SetRate(0)
	_, sp = tr.Force(context.Background(), "storage:compact")
	if sp != nil {
		t.Fatalf("Force traced while tracing disabled")
	}
}

func TestFormatText(t *testing.T) {
	tr := New()
	tr.SetRate(1)
	ctx, root := tr.Start(context.Background(), "kv:get")
	_, c := tr.Start(ctx, "route")
	c.Annotate("vb", "7")
	c.End()
	root.End()
	out := Format(root.Trace())
	for _, want := range []string{"op=kv:get", "route", "vb=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	if Format(nil) != "<no trace>" {
		t.Fatalf("nil Format")
	}
}

// TestConcurrentSpansAndRender hammers one trace from many
// goroutines while rendering it — the async-hop pattern under -race.
func TestConcurrentSpansAndRender(t *testing.T) {
	tr := New()
	tr.SetRate(1)
	_, root := tr.Start(context.Background(), "kv:set")
	tc := root.Trace()
	root.End()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tc.StartSpan("feed:apply")
				sp.Annotate("seqno", "1")
				sp.End()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tc.Tree()
				tr.Traces()
				tr.Get(tc.ID)
				Format(tc)
			}
		}()
	}
	wg.Wait()
}
