package trace

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// twoTracers builds two independent tracers standing in for two
// processes, both sampling everything.
func twoTracers() (*Tracer, *Tracer) {
	a, b := New(), New()
	a.SetRate(1)
	b.SetRate(1)
	return a, b
}

func TestTraceIDsUniqueAcrossTracers(t *testing.T) {
	a, b := twoTracers()
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		for _, tr := range []*Tracer{a, b} {
			_, sp := tr.Start(context.Background(), "kv:get")
			id := sp.Trace().ID
			if seen[id] {
				t.Fatalf("trace ID %d repeated across tracers", id)
			}
			seen[id] = true
			sp.End()
		}
	}
}

func TestWireContextAndJoin(t *testing.T) {
	client, server := twoTracers()
	ctx, root := client.Start(context.Background(), "rest:put")
	id, spanID, ok := FromContext(ctx).WireContext()
	if !ok || id != root.Trace().ID {
		t.Fatalf("wire context: id=%d ok=%v, want id=%d", id, ok, root.Trace().ID)
	}

	// The server joins the client's trace: its span lands in a foreign
	// portion under the client's trace ID, remote-parented to the
	// client's span.
	sctx, ssp := server.Join(context.Background(), "server:set", id, spanID, true)
	if ssp == nil {
		t.Fatal("Join returned no span for a sampled context")
	}
	if FromContext(sctx) != ssp {
		t.Fatal("joined ctx does not carry the server span")
	}
	child := ssp.Child("cache:set")
	child.End()
	ssp.End()
	root.End()

	portions := server.Portions(id)
	if len(portions) != 1 {
		t.Fatalf("server portions: %d, want 1", len(portions))
	}
	ex := portions[0].Export("node-b")
	if !ex.Foreign {
		t.Fatal("server portion not marked foreign")
	}
	if len(ex.Spans) != 2 {
		t.Fatalf("exported spans: %d, want 2", len(ex.Spans))
	}
	rootSpan := ex.Spans[0]
	if rootSpan.Parent != nil {
		t.Fatal("portion root has a local parent")
	}
	if rootSpan.RemoteParent == nil || *rootSpan.RemoteParent != spanID {
		t.Fatalf("portion root remote parent: %v, want %d", rootSpan.RemoteParent, spanID)
	}
	if ex.Spans[1].Parent == nil || *ex.Spans[1].Parent != rootSpan.ID {
		t.Fatal("child span not parented to portion root")
	}
}

func TestJoinUnsampledOrZeroIsNil(t *testing.T) {
	tr := New()
	tr.SetRate(1)
	if _, sp := tr.Join(context.Background(), "x", 0, 0, true); sp != nil {
		t.Fatal("joined a zero trace ID")
	}
	if _, sp := tr.Join(context.Background(), "x", 7, 0, false); sp != nil {
		t.Fatal("joined an unsampled context")
	}
	if got := len(tr.Portions(7)); got != 0 {
		t.Fatalf("unsampled join retained %d portions", got)
	}
}

func TestAdoptDedupsAndEvicts(t *testing.T) {
	tr := New()
	if tr.Adopt(42, 1) != tr.Adopt(42, 9) {
		t.Fatal("same trace ID adopted into two portions")
	}
	// FIFO eviction holds the foreign map at foreignCap.
	for i := uint64(1); i < foreignCap+10; i++ {
		tr.Adopt(1000+i, 1)
	}
	tr.mu.Lock()
	n := len(tr.foreign)
	tr.mu.Unlock()
	if n > foreignCap {
		t.Fatalf("foreign portions grew to %d, cap %d", n, foreignCap)
	}
	if got := tr.Portions(42); len(got) != 0 {
		t.Fatal("oldest portion survived eviction")
	}
}

// TestStitchThreeProcesses rebuilds the tentpole scenario from
// exports alone: client rest:put → active server:set (+cache child)
// → replica replica:apply, each portion from a different process,
// stitched into one tree with node labels intact.
func TestStitchThreeProcesses(t *testing.T) {
	client, active := twoTracers()
	replica := New()
	replica.SetRate(1)

	ctx, root := client.Start(context.Background(), "rest:put")
	id, rootWire, _ := FromContext(ctx).WireContext()

	_, srv := active.Join(context.Background(), "server:set", id, rootWire, true)
	srv.Child("cache:set").End()
	// The DCP push carries the active portion's root wire ID.
	aid, awire, ok := active.Portions(id)[0].RootWire()
	if !ok || aid != id {
		t.Fatalf("active RootWire: id=%d ok=%v", aid, ok)
	}
	rt := replica.Adopt(id, awire)
	rt.StartSpan("replica:apply").End()
	srv.End()
	root.End()

	var portions []Export
	for node, tr := range map[string]*Tracer{"client": client, "active": active, "replica": replica} {
		for _, p := range tr.Portions(id) {
			portions = append(portions, p.Export(node))
		}
	}
	if len(portions) != 3 {
		t.Fatalf("portions: %d, want 3", len(portions))
	}
	tree := Stitch(portions)
	if tree == nil {
		t.Fatal("Stitch returned nil")
	}
	if tree.Name != "rest:put" || tree.Node != "client" {
		t.Fatalf("root: %s on %s, want rest:put on client", tree.Name, tree.Node)
	}
	// Flatten and assert every process contributed.
	nodes := map[string]bool{}
	names := map[string]string{}
	var walk func(n *Node)
	var total int
	walk = func(n *Node) {
		total++
		nodes[n.Node] = true
		names[n.Name] = n.Node
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree)
	for _, want := range []string{"client", "active", "replica"} {
		if !nodes[want] {
			t.Fatalf("stitched tree missing spans from %q (have %v)", want, nodes)
		}
	}
	if names["server:set"] != "active" || names["replica:apply"] != "replica" {
		t.Fatalf("span placement: %v", names)
	}
	if total != 4 {
		t.Fatalf("stitched %d spans, want 4", total)
	}
	// replica:apply must hang under the active's server:set span, not
	// the client root — the DCP hop preserves causality.
	var findParent func(n *Node, name string) *Node
	findParent = func(n *Node, name string) *Node {
		for _, c := range n.Children {
			if c.Name == name {
				return n
			}
			if p := findParent(c, name); p != nil {
				return p
			}
		}
		return nil
	}
	if p := findParent(tree, "replica:apply"); p == nil || p.Name != "server:set" {
		t.Fatalf("replica:apply parent: %+v, want server:set", p)
	}
}

// TestStitchOrphanAndHostile: a portion whose remote parent no longer
// exists grafts under the root with an annotation instead of being
// dropped, and hostile exports (cycles, dangling local parents) never
// hang or panic the stitcher.
func TestStitchOrphanAndHostile(t *testing.T) {
	u := func(v uint32) *uint32 { return &v }
	root := Export{
		ID: 7, Op: "rest:put", Node: "a", StartUnixUS: 100,
		Spans: []SpanExport{{ID: 1, Name: "rest:put", StartUnixUS: 100, DurationUS: 50}},
	}
	orphan := Export{
		ID: 7, Node: "b", Foreign: true, StartUnixUS: 110,
		Spans: []SpanExport{{ID: 2, RemoteParent: u(99), Name: "server:set", StartUnixUS: 110, DurationUS: 10}},
	}
	tree := Stitch([]Export{root, orphan})
	if tree == nil || len(tree.Children) != 1 {
		t.Fatalf("orphan not grafted under root: %+v", tree)
	}
	annotated := false
	for _, a := range tree.Children[0].Annotations {
		if a.Key == "stitch" && strings.Contains(a.Value, "remote parent missing") {
			annotated = true
		}
	}
	if !annotated {
		t.Fatalf("orphan graft not annotated: %+v", tree.Children[0].Annotations)
	}

	// Cycle: two spans claiming each other as local parents.
	evil := Export{
		ID: 7, Node: "c", Foreign: true,
		Spans: []SpanExport{
			{ID: 10, Parent: u(11), Name: "x"},
			{ID: 11, Parent: u(10), Name: "y"},
		},
	}
	done := make(chan *Node, 1)
	go func() { done <- Stitch([]Export{root, evil}) }()
	select {
	case tree := <-done:
		if tree == nil {
			t.Fatal("hostile stitch returned nil with a valid root present")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stitcher hung on a parent cycle")
	}

	if Stitch(nil) != nil {
		t.Fatal("empty stitch produced a tree")
	}
}

func TestApplyConfigJSONStrict(t *testing.T) {
	tr := New()
	tr.SetRate(0)

	// Valid config applies everything.
	cfg, err := tr.ApplyConfigJSON([]byte(`{"rate": 8, "thresholds": {"kv:set": "5ms"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rate == nil || *cfg.Rate != 8 || tr.Rate() != 8 {
		t.Fatalf("rate not applied: cfg=%+v rate=%d", cfg, tr.Rate())
	}
	if tr.Thresholds()["kv:set"] != 5*time.Millisecond {
		t.Fatalf("threshold not applied: %v", tr.Thresholds())
	}

	// Unknown fields are rejected by name, and nothing applies.
	_, err = tr.ApplyConfigJSON([]byte(`{"rate": 99, "rte": 1}`))
	if err == nil || !strings.Contains(err.Error(), "rte") {
		t.Fatalf("unknown field not named: %v", err)
	}
	if tr.Rate() != 8 {
		t.Fatalf("failed config partially applied: rate=%d", tr.Rate())
	}

	// A bad threshold anywhere rejects the whole config.
	_, err = tr.ApplyConfigJSON([]byte(`{"rate": 3, "thresholds": {"kv:get": "fast"}}`))
	if err == nil || !strings.Contains(err.Error(), "kv:get") {
		t.Fatalf("bad threshold not named: %v", err)
	}
	if tr.Rate() != 8 {
		t.Fatalf("rate applied despite bad threshold: %d", tr.Rate())
	}

	// Trailing data and non-object bodies are rejected.
	for _, bad := range []string{`{"rate":1} extra`, `[1,2]`, ``} {
		if _, err := tr.ApplyConfigJSON([]byte(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}

	// Clear drops retained traces.
	tr.SetRate(1)
	_, sp := tr.Start(context.Background(), "kv:get")
	sp.End()
	if len(tr.Traces()) == 0 {
		t.Fatal("setup: no retained trace")
	}
	if _, err := tr.ApplyConfigJSON([]byte(`{"clear": true}`)); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Traces()); got != 0 {
		t.Fatalf("clear left %d traces", got)
	}
}

// TestExportJSONStable: exports must survive a JSON round trip (they
// cross the wire between nodes) with span identity intact.
func TestExportJSONStable(t *testing.T) {
	tr := New()
	tr.SetRate(1)
	ctx, root := tr.Start(context.Background(), "kv:set")
	FromContext(ctx).Child("storage:commit").End()
	root.End()
	ex := tr.Portions(root.Trace().ID)[0].Export("n1")

	raw, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != ex.ID || back.Node != "n1" || len(back.Spans) != len(ex.Spans) {
		t.Fatalf("round trip mangled export: %+v vs %+v", back, ex)
	}
	if tree := Stitch([]Export{back}); tree == nil || tree.Name != "kv:set" {
		t.Fatalf("single-portion stitch: %+v", tree)
	}
}
