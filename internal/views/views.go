// Package views implements the view engine (paper §3.1.2, §4.3.3): a
// MapReduce-style local index. A view is defined by a map function that
// extracts (key, value) pairs from documents and an optional reduce
// that pre-aggregates them; the reduce results are stored inside the
// index B-tree's interior nodes, making aggregation queries O(log n).
//
// The paper defines map functions in JavaScript. The Go stdlib has no
// JS engine, so the map function is expressed declaratively with the
// N1QL expression language (see DESIGN.md, substitutions): a Filter
// predicate plays the role of the `if (...)` guard and Key/Value
// expressions play the role of `emit(key, value)`. The indexing
// pipeline — DCP-fed incremental maintenance, per-vBucket seqno
// tracking, stale=false/ok/update_after, scatter/gather, and vBucket
// filtering for rebalance — matches the paper.
package views

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"couchgo/internal/btree"
	"couchgo/internal/dcp"
	"couchgo/internal/feed"
	"couchgo/internal/n1ql"
	"couchgo/internal/value"
)

// Staleness is the view query consistency knob (§3.1.2).
type Staleness int

const (
	// StaleOK: "Just return the current entries from the index file."
	StaleOK Staleness = iota
	// StaleFalse: "Wait for the view indexer to finish processing
	// changes ... and then return the latest entries."
	StaleFalse
	// StaleUpdateAfter: "Return the current entries from the index, but
	// then initiate a view index update. (This is the default.)"
	StaleUpdateAfter
)

// Errors returned by the view engine.
var (
	ErrNoSuchView = errors.New("views: no such view")
	ErrViewExists = errors.New("views: view already exists")
	ErrBadReduce  = errors.New("views: unknown reduce function")
	ErrBadMapSpec = errors.New("views: invalid map specification")
)

// MapSpec is the declarative map function. Expressions evaluate with
// the document bound to the alias "doc" (also the default alias, so
// bare field names work) and META().id giving the document ID.
type MapSpec struct {
	// Filter guards emission, like the `if` in a JS map function.
	// Empty = always emit.
	Filter string
	// Key is the emitted index key expression (required).
	Key string
	// Value is the emitted value expression. Empty = null.
	Value string
}

// Definition names a view and its map/reduce.
type Definition struct {
	Name   string
	Map    MapSpec
	Reduce string // "", "_count", "_sum", "_stats", "_min", "_max"
}

// Row is one view query result row.
type Row struct {
	Key   any
	Value any
	ID    string // empty for reduced rows
}

// QueryOptions mirror the view REST API's parameters.
type QueryOptions struct {
	Key          any   // exact-key lookup (set HasKey)
	HasKey       bool  // distinguishes Key=null from "no key"
	Keys         []any // multi-key lookup
	StartKey     any
	EndKey       any
	HasStart     bool
	HasEnd       bool
	InclusiveEnd bool
	Descending   bool
	Limit        int // 0 = unlimited
	Skip         int
	Reduce       bool
	Group        bool
	Stale        Staleness
	// WaitSeqnos, for Stale=StaleFalse: the per-vBucket seqnos the
	// index must reach before the scan runs (the data service's current
	// high seqnos at query submission).
	WaitSeqnos map[int]uint64
}

// entry is the tree value for one emitted pair.
type entry struct {
	vb  int
	id  string
	key any
	val any
}

// compiled map spec.
type compiledMap struct {
	filter n1ql.Expr // nil if none
	key    n1ql.Expr
	value  n1ql.Expr // nil if none
}

func compileMap(spec MapSpec) (*compiledMap, error) {
	if spec.Key == "" {
		return nil, fmt.Errorf("%w: empty key expression", ErrBadMapSpec)
	}
	cm := &compiledMap{}
	var err error
	if cm.key, err = n1ql.ParseExpr(spec.Key); err != nil {
		return nil, fmt.Errorf("%w: key: %v", ErrBadMapSpec, err)
	}
	if spec.Filter != "" {
		if cm.filter, err = n1ql.ParseExpr(spec.Filter); err != nil {
			return nil, fmt.Errorf("%w: filter: %v", ErrBadMapSpec, err)
		}
	}
	if spec.Value != "" {
		if cm.value, err = n1ql.ParseExpr(spec.Value); err != nil {
			return nil, fmt.Errorf("%w: value: %v", ErrBadMapSpec, err)
		}
	}
	return cm, nil
}

// emit runs the map function over one document.
func (cm *compiledMap) emit(docID string, doc any) (key, val any, ok bool, err error) {
	ctx := n1ql.NewContext("doc", doc, n1ql.Meta{ID: docID})
	if cm.filter != nil {
		f, err := n1ql.Eval(cm.filter, ctx)
		if err != nil {
			return nil, nil, false, err
		}
		if f != true {
			return nil, nil, false, nil
		}
	}
	k, err := n1ql.Eval(cm.key, ctx)
	if err != nil {
		return nil, nil, false, err
	}
	if value.IsMissing(k) {
		return nil, nil, false, nil // emitting MISSING emits nothing
	}
	var v any
	if cm.value != nil {
		v, err = n1ql.Eval(cm.value, ctx)
		if err != nil {
			return nil, nil, false, err
		}
		if value.IsMissing(v) {
			v = nil
		}
	}
	return k, v, true, nil
}

// Engine is the per-node view engine: it consumes each local vBucket's
// DCP feed through the shared feed layer and maintains every defined
// view's B-tree. The feed hub owns all stream lifecycle; each view
// subscribes as one named consumer.
type Engine struct {
	hub *feed.Hub

	mu    sync.Mutex
	views map[string]*viewIndex
}

// NewEngine creates an empty view engine.
func NewEngine() *Engine {
	return &Engine{hub: feed.NewHub("views"), views: make(map[string]*viewIndex)}
}

// viewIndex is one view's local index.
type viewIndex struct {
	def Definition
	cm  *compiledMap

	mu        sync.Mutex
	tree      *btree.Tree
	back      map[int]map[string][][]byte // vb -> docID -> tree keys
	processed map[int]uint64              // vb -> last applied seqno
	cond      *sync.Cond
	closed    bool
}

// Define creates a view and starts materializing it from every
// attached vBucket ("during initial view building ... Couchbase reads
// the partition's data files and applies the map function across every
// document" — here via a DCP backfill stream from seqno 0).
func (e *Engine) Define(def Definition) error {
	cm, err := compileMap(def.Map)
	if err != nil {
		return err
	}
	red, err := reducerFor(def.Reduce)
	if err != nil {
		return err
	}
	e.mu.Lock()
	if _, ok := e.views[def.Name]; ok {
		e.mu.Unlock()
		return ErrViewExists
	}
	vi := &viewIndex{
		def:       def,
		cm:        cm,
		tree:      btree.New(red),
		back:      make(map[int]map[string][][]byte),
		processed: make(map[int]uint64),
	}
	vi.cond = sync.NewCond(&vi.mu)
	e.views[def.Name] = vi
	e.mu.Unlock()
	// Materialize from every attached vBucket: the hub opens a backfill
	// stream from seqno 0 per producer for the new subscription.
	if _, err := e.hub.Subscribe("view:"+def.Name, vi); err != nil {
		e.mu.Lock()
		delete(e.views, def.Name)
		e.mu.Unlock()
		vi.close()
		return err
	}
	return nil
}

// Drop removes a view.
func (e *Engine) Drop(name string) error {
	e.mu.Lock()
	vi, ok := e.views[name]
	delete(e.views, name)
	e.mu.Unlock()
	if !ok {
		return ErrNoSuchView
	}
	e.hub.Unsubscribe("view:" + name)
	vi.close()
	return nil
}

// Names lists defined views.
func (e *Engine) Names() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.views))
	for n := range e.views {
		out = append(out, n)
	}
	return out
}

// AttachVB begins indexing a vBucket that became active on this node.
// Attaching an already-attached vBucket is a no-op, so cluster state
// reconciliation can call it idempotently.
func (e *Engine) AttachVB(vb int, p dcp.StreamSource) error {
	return e.hub.AttachVB(vb, p)
}

// DetachVB stops indexing a vBucket and removes its entries. This is
// the rebalance/failover consistency mechanism of §4.3.3: "when a
// partition has migrated to a different server, the documents that
// belong to the migrated partition should not be used in the view
// result anymore."
func (e *Engine) DetachVB(vb int) {
	e.hub.DetachVB(vb)
	e.mu.Lock()
	views := make([]*viewIndex, 0, len(e.views))
	for _, vi := range e.views {
		views = append(views, vi)
	}
	e.mu.Unlock()
	for _, vi := range views {
		vi.Rollback(vb, 0)
	}
}

// FeedStats describes the engine's feeds (one per view).
func (e *Engine) FeedStats() []feed.Stat {
	return e.hub.Stats()
}

// Close stops all views.
func (e *Engine) Close() {
	e.hub.Close()
	e.mu.Lock()
	views := make([]*viewIndex, 0, len(e.views))
	for _, vi := range e.views {
		views = append(views, vi)
	}
	e.views = make(map[string]*viewIndex)
	e.mu.Unlock()
	for _, vi := range views {
		vi.close()
	}
}

// Rollback implements feed.Rollbacker: discard the partition's entries
// entirely and let the feed re-stream it. A promoted copy's history is
// shorter than what this view applied, and emitted rows from the lost
// branch must not survive.
func (vi *viewIndex) Rollback(vb int, _ uint64) uint64 {
	vi.mu.Lock()
	for _, treeKeys := range vi.back[vb] {
		for _, tk := range treeKeys {
			vi.tree.Delete(tk)
		}
	}
	delete(vi.back, vb)
	delete(vi.processed, vb)
	vi.mu.Unlock()
	return 0
}

func (vi *viewIndex) close() {
	vi.mu.Lock()
	vi.closed = true
	vi.cond.Broadcast()
	vi.mu.Unlock()
}

// treeKey builds the composite key: encoded emit key, 0x00 separator,
// then docID — unique per (key, doc) and ordered by collation.
func treeKey(k any, docID string) []byte {
	enc := value.EncodeKey(k)
	out := make([]byte, 0, len(enc)+1+len(docID))
	out = append(out, enc...)
	out = append(out, 0x00)
	return append(out, docID...)
}

// Apply implements feed.Consumer: drop the doc's old emissions, then
// add new ones.
func (vi *viewIndex) Apply(vb int, m dcp.Mutation) {
	var k, v any
	var emitOK bool
	if !m.Deleted {
		doc, ok := value.Parse(m.Value)
		if ok {
			var err error
			k, v, emitOK, err = vi.cm.emit(m.Key, doc)
			if err != nil {
				emitOK = false // a failing map function emits nothing
			}
		}
	}
	vi.mu.Lock()
	defer vi.mu.Unlock()
	if vi.closed {
		return
	}
	byDoc := vi.back[vb]
	if byDoc == nil {
		byDoc = make(map[string][][]byte)
		vi.back[vb] = byDoc
	}
	for _, tk := range byDoc[m.Key] {
		vi.tree.Delete(tk)
	}
	delete(byDoc, m.Key)
	if emitOK {
		tk := treeKey(k, m.Key)
		vi.tree.Set(tk, entry{vb: vb, id: m.Key, key: k, val: v})
		byDoc[m.Key] = [][]byte{tk}
	}
	if m.Seqno > vi.processed[vb] {
		vi.processed[vb] = m.Seqno
	}
	vi.cond.Broadcast()
}

// waitFor blocks until the index has processed the given seqno vector
// or ctx is cancelled; cancellation wakes the wait through Broadcast.
func (vi *viewIndex) waitFor(ctx context.Context, seqnos map[int]uint64) error {
	stop := context.AfterFunc(ctx, func() { vi.cond.Broadcast() })
	defer stop()
	vi.mu.Lock()
	defer vi.mu.Unlock()
	for !vi.closed {
		if err := ctx.Err(); err != nil {
			return err
		}
		ok := true
		for vb, want := range seqnos {
			if want > 0 && vi.processed[vb] < want {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		vi.cond.Wait()
	}
	return nil
}

// Processed returns a copy of the per-vBucket applied-seqno vector.
func (e *Engine) Processed(name string) (map[int]uint64, error) {
	e.mu.Lock()
	vi, ok := e.views[name]
	e.mu.Unlock()
	if !ok {
		return nil, ErrNoSuchView
	}
	vi.mu.Lock()
	defer vi.mu.Unlock()
	out := make(map[int]uint64, len(vi.processed))
	for vb, s := range vi.processed {
		out[vb] = s
	}
	return out, nil
}

// Query runs a view query against this node's local index. Cluster
// scatter/gather (Figure 8) merges Query results from every node. The
// ctx bounds the stale=false consistency wait.
func (e *Engine) Query(ctx context.Context, name string, opts QueryOptions) ([]Row, error) {
	e.mu.Lock()
	vi, ok := e.views[name]
	e.mu.Unlock()
	if !ok {
		return nil, ErrNoSuchView
	}
	if opts.Stale == StaleFalse && len(opts.WaitSeqnos) > 0 {
		if err := vi.waitFor(ctx, opts.WaitSeqnos); err != nil {
			return nil, err
		}
	}
	if opts.Reduce && vi.def.Reduce == "" {
		return nil, fmt.Errorf("%w: view %s has no reduce", ErrBadReduce, name)
	}

	// Multi-key lookup: union of exact-key queries.
	if len(opts.Keys) > 0 {
		var rows []Row
		for _, k := range opts.Keys {
			sub := opts
			sub.Keys = nil
			sub.Key = k
			sub.HasKey = true
			r, err := e.queryOne(vi, sub)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r...)
		}
		return trimRows(rows, opts), nil
	}
	rows, err := e.queryOne(vi, opts)
	if err != nil {
		return nil, err
	}
	return trimRows(rows, opts), nil
}

func (e *Engine) queryOne(vi *viewIndex, opts QueryOptions) ([]Row, error) {
	lo, hi := scanBounds(opts)
	vi.mu.Lock()
	defer vi.mu.Unlock()
	if opts.Reduce && !opts.Group {
		// The fast path the paper highlights: aggregate straight from
		// the pre-computed reduce annotations in the tree.
		return []Row{{Key: nil, Value: finishReduce(vi.def.Reduce, vi.tree.ReduceRange(lo, hi))}}, nil
	}
	if opts.Reduce && opts.Group {
		return reduceGrouped(vi, lo, hi), nil
	}
	var rows []Row
	visit := func(_ []byte, v any) bool {
		en := v.(entry)
		rows = append(rows, Row{Key: en.key, Value: en.val, ID: en.id})
		return true
	}
	if opts.Descending {
		vi.tree.Descend(lo, hi, visit)
	} else {
		vi.tree.Ascend(lo, hi, visit)
	}
	return rows, nil
}

// scanBounds converts query options into tree-key bounds.
func scanBounds(opts QueryOptions) (lo, hi []byte) {
	if opts.HasKey {
		enc := value.EncodeKey(opts.Key)
		lo = append(append([]byte{}, enc...), 0x00)
		hi = append(append([]byte{}, enc...), 0x01)
		return lo, hi
	}
	if opts.HasStart {
		enc := value.EncodeKey(opts.StartKey)
		lo = append(append([]byte{}, enc...), 0x00)
	}
	if opts.HasEnd {
		enc := value.EncodeKey(opts.EndKey)
		if opts.InclusiveEnd {
			hi = append(append([]byte{}, enc...), 0x01)
		} else {
			hi = append(append([]byte{}, enc...), 0x00)
		}
	}
	return lo, hi
}

func trimRows(rows []Row, opts QueryOptions) []Row {
	if opts.Skip > 0 {
		if opts.Skip >= len(rows) {
			return nil
		}
		rows = rows[opts.Skip:]
	}
	if opts.Limit > 0 && len(rows) > opts.Limit {
		rows = rows[:opts.Limit]
	}
	return rows
}

func reduceGrouped(vi *viewIndex, lo, hi []byte) []Row {
	var rows []Row
	var curKey any
	var acc any
	started := false
	r, _ := reducerFor(vi.def.Reduce)
	flush := func() {
		if started {
			rows = append(rows, Row{Key: curKey, Value: finishReduce(vi.def.Reduce, acc)})
		}
	}
	vi.tree.Ascend(lo, hi, func(tk []byte, v any) bool {
		en := v.(entry)
		if !started || value.Compare(en.key, curKey) != 0 {
			flush()
			curKey = en.key
			acc = r.Zero()
			started = true
		}
		acc = r.Merge(acc, r.Map(tk, v))
		return true
	})
	flush()
	return rows
}
