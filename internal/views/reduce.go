package views

import (
	"fmt"
	"sort"

	"couchgo/internal/btree"
	"couchgo/internal/value"
)

// Built-in reduce functions, matching the set CouchDB-heritage views
// provide: _count, _sum, _stats, _min, _max. Each is a btree.Reducer so
// partial aggregates live in the index tree's interior nodes.

func reducerFor(name string) (btree.Reducer, error) {
	switch name {
	case "":
		return nil, nil
	case "_count":
		return countReducer{}, nil
	case "_sum":
		return sumReducer{}, nil
	case "_stats":
		return statsReducer{}, nil
	case "_min":
		return minReducer{}, nil
	case "_max":
		return maxReducer{}, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrBadReduce, name)
}

// finishReduce converts an internal partial into the client-facing
// value (stats partials become their JSON object form).
func finishReduce(name string, partial any) any {
	if name == "_stats" {
		st, ok := partial.(stats)
		if !ok {
			return stats{}.object()
		}
		return st.object()
	}
	return partial
}

type countReducer struct{}

func (countReducer) Map(_ []byte, _ any) any { return 1.0 }
func (countReducer) Merge(parts ...any) any {
	total := 0.0
	for _, p := range parts {
		if f, ok := p.(float64); ok {
			total += f
		}
	}
	return total
}
func (countReducer) Zero() any { return 0.0 }

type sumReducer struct{}

func (sumReducer) Map(_ []byte, v any) any {
	if f, ok := value.AsNumber(v.(entry).val); ok {
		return f
	}
	return 0.0
}
func (sumReducer) Merge(parts ...any) any {
	total := 0.0
	for _, p := range parts {
		if f, ok := p.(float64); ok {
			total += f
		}
	}
	return total
}
func (sumReducer) Zero() any { return 0.0 }

// stats mirrors CouchDB's _stats object.
type stats struct {
	Sum, Min, Max, SumSqr float64
	Count                 float64
}

func (s stats) object() map[string]any {
	if s.Count == 0 {
		return map[string]any{"sum": 0.0, "count": 0.0, "min": nil, "max": nil, "sumsqr": 0.0}
	}
	return map[string]any{"sum": s.Sum, "count": s.Count, "min": s.Min, "max": s.Max, "sumsqr": s.SumSqr}
}

type statsReducer struct{}

func (statsReducer) Map(_ []byte, v any) any {
	f, ok := value.AsNumber(v.(entry).val)
	if !ok {
		return stats{}
	}
	return stats{Sum: f, Min: f, Max: f, SumSqr: f * f, Count: 1}
}
func (statsReducer) Merge(parts ...any) any {
	var out stats
	for _, p := range parts {
		st, ok := p.(stats)
		if !ok || st.Count == 0 {
			continue
		}
		if out.Count == 0 {
			out = st
			continue
		}
		out.Sum += st.Sum
		out.SumSqr += st.SumSqr
		out.Count += st.Count
		if st.Min < out.Min {
			out.Min = st.Min
		}
		if st.Max > out.Max {
			out.Max = st.Max
		}
	}
	return out
}
func (statsReducer) Zero() any { return stats{} }

type minReducer struct{}

func (minReducer) Map(_ []byte, v any) any { return v.(entry).val }
func (minReducer) Merge(parts ...any) any {
	var best any
	for _, p := range parts {
		if p == nil {
			continue
		}
		if best == nil || value.Compare(p, best) < 0 {
			best = p
		}
	}
	return best
}
func (minReducer) Zero() any { return nil }

type maxReducer struct{}

func (maxReducer) Map(_ []byte, v any) any { return v.(entry).val }
func (maxReducer) Merge(parts ...any) any {
	var best any
	for _, p := range parts {
		if p == nil {
			continue
		}
		if best == nil || value.Compare(p, best) > 0 {
			best = p
		}
	}
	return best
}
func (maxReducer) Zero() any { return nil }

// MergeRows merges per-node scatter/gather results into one sorted
// result set, as the coordinating node does in Figure 8. For reduced
// (non-grouped) results, partials re-merge with the named reduce.
func MergeRows(reduce string, grouped bool, parts [][]Row) []Row {
	if reduce != "" && !grouped {
		return mergeReduced(reduce, parts)
	}
	var all []Row
	for _, p := range parts {
		all = append(all, p...)
	}
	sortRows(all)
	if reduce != "" && grouped {
		return regroup(reduce, all)
	}
	return all
}

func mergeReduced(reduce string, parts [][]Row) []Row {
	switch reduce {
	case "_count", "_sum":
		total := 0.0
		for _, p := range parts {
			for _, r := range p {
				if f, ok := value.AsNumber(r.Value); ok {
					total += f
				}
			}
		}
		return []Row{{Value: total}}
	case "_min":
		var best any
		for _, p := range parts {
			for _, r := range p {
				if r.Value == nil {
					continue
				}
				if best == nil || value.Compare(r.Value, best) < 0 {
					best = r.Value
				}
			}
		}
		return []Row{{Value: best}}
	case "_max":
		var best any
		for _, p := range parts {
			for _, r := range p {
				if r.Value == nil {
					continue
				}
				if best == nil || value.Compare(r.Value, best) > 0 {
					best = r.Value
				}
			}
		}
		return []Row{{Value: best}}
	case "_stats":
		var out stats
		for _, p := range parts {
			for _, r := range p {
				obj, ok := r.Value.(map[string]any)
				if !ok {
					continue
				}
				cnt, _ := value.AsNumber(obj["count"])
				if cnt == 0 {
					continue
				}
				sum, _ := value.AsNumber(obj["sum"])
				mn, _ := value.AsNumber(obj["min"])
				mx, _ := value.AsNumber(obj["max"])
				sq, _ := value.AsNumber(obj["sumsqr"])
				st := stats{Sum: sum, Min: mn, Max: mx, SumSqr: sq, Count: cnt}
				if out.Count == 0 {
					out = st
				} else {
					out.Sum += st.Sum
					out.SumSqr += st.SumSqr
					out.Count += st.Count
					if st.Min < out.Min {
						out.Min = st.Min
					}
					if st.Max > out.Max {
						out.Max = st.Max
					}
				}
			}
		}
		return []Row{{Value: out.object()}}
	}
	return nil
}

func regroup(reduce string, sorted []Row) []Row {
	var out []Row
	for _, r := range sorted {
		if len(out) > 0 && value.Compare(out[len(out)-1].Key, r.Key) == 0 {
			merged := mergeReduced(reduce, [][]Row{{out[len(out)-1]}, {r}})
			out[len(out)-1].Value = merged[0].Value
			continue
		}
		out = append(out, Row{Key: r.Key, Value: r.Value})
	}
	return out
}

func sortRows(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if c := value.Compare(rows[i].Key, rows[j].Key); c != 0 {
			return c < 0
		}
		return rows[i].ID < rows[j].ID
	})
}
