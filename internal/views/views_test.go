package views

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"couchgo/internal/storage"
	"couchgo/internal/value"
	"couchgo/internal/vbucket"
)

// harness: a view engine attached to a couple of real vBuckets.
type harness struct {
	engine *Engine
	vbs    []*vbucket.VBucket
}

func newHarness(t *testing.T, nvb int) *harness {
	t.Helper()
	h := &harness{engine: NewEngine()}
	dir := t.TempDir()
	for i := 0; i < nvb; i++ {
		f, err := storage.Open(filepath.Join(dir, fmt.Sprintf("vb%d.couch", i)), false)
		if err != nil {
			t.Fatal(err)
		}
		vb := vbucket.New(i, f, vbucket.Active, vbucket.Config{})
		h.vbs = append(h.vbs, vb)
		if err := h.engine.AttachVB(i, vb.Producer()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { vb.Close(); f.Close() })
	}
	t.Cleanup(h.engine.Close)
	return h
}

// put writes doc JSON to the vbucket chosen by simple round robin.
func (h *harness) put(t *testing.T, vb int, key, doc string) {
	t.Helper()
	if _, err := h.vbs[vb].Set(context.Background(), key, []byte(doc), 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

// waitVector builds the stale=false wait vector from current state.
func (h *harness) waitVector() map[int]uint64 {
	out := map[int]uint64{}
	for _, vb := range h.vbs {
		out[vb.ID] = vb.HighSeqno()
	}
	return out
}

func (h *harness) queryFresh(t *testing.T, name string, opts QueryOptions) []Row {
	t.Helper()
	opts.Stale = StaleFalse
	opts.WaitSeqnos = h.waitVector()
	rows, err := h.engine.Query(context.Background(), name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// profileView is the paper's §3.1.2 example: emit(doc.name, doc.email)
// guarded by if (doc.name).
var profileView = Definition{
	Name: "profile",
	Map: MapSpec{
		Filter: "doc.name IS NOT MISSING",
		Key:    "doc.name",
		Value:  "doc.email",
	},
}

func TestPaperProfileViewExample(t *testing.T) {
	h := newHarness(t, 2)
	if err := h.engine.Define(profileView); err != nil {
		t.Fatal(err)
	}
	h.put(t, 0, "borkar123", `{"name": "Dipti", "email": "dipti@couchbase.com"}`)
	h.put(t, 1, "mayuram456", `{"name": "Ravi", "email": "ravi@couchbase.com"}`)
	h.put(t, 0, "anon", `{"email": "no-name@x.com"}`) // filtered out

	// REST query ?key="Dipti"&stale=false
	rows := h.queryFresh(t, "profile", QueryOptions{Key: "Dipti", HasKey: true})
	if len(rows) != 1 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].Value != "dipti@couchbase.com" || rows[0].ID != "borkar123" {
		t.Errorf("row: %+v", rows[0])
	}
	// The filtered doc emitted nothing.
	all := h.queryFresh(t, "profile", QueryOptions{})
	if len(all) != 2 {
		t.Fatalf("all rows: %+v", all)
	}
	// Sorted by key: Dipti before Ravi.
	if all[0].Key != "Dipti" || all[1].Key != "Ravi" {
		t.Errorf("order: %+v", all)
	}
}

func TestViewUpdatesAndDeletes(t *testing.T) {
	h := newHarness(t, 1)
	if err := h.engine.Define(profileView); err != nil {
		t.Fatal(err)
	}
	h.put(t, 0, "u1", `{"name": "Alice", "email": "a@x.com"}`)
	rows := h.queryFresh(t, "profile", QueryOptions{})
	if len(rows) != 1 || rows[0].Key != "Alice" {
		t.Fatalf("initial: %+v", rows)
	}
	// Rename: old entry must disappear.
	h.put(t, 0, "u1", `{"name": "Alicia", "email": "a@x.com"}`)
	rows = h.queryFresh(t, "profile", QueryOptions{})
	if len(rows) != 1 || rows[0].Key != "Alicia" {
		t.Fatalf("after update: %+v", rows)
	}
	// Update that stops emitting.
	h.put(t, 0, "u1", `{"email": "a@x.com"}`)
	rows = h.queryFresh(t, "profile", QueryOptions{})
	if len(rows) != 0 {
		t.Fatalf("after unname: %+v", rows)
	}
	// Re-add then delete the doc.
	h.put(t, 0, "u1", `{"name": "Alice", "email": "a@x.com"}`)
	if _, err := h.vbs[0].Delete(context.Background(), "u1", 0, 0); err != nil {
		t.Fatal(err)
	}
	rows = h.queryFresh(t, "profile", QueryOptions{})
	if len(rows) != 0 {
		t.Fatalf("after delete: %+v", rows)
	}
}

func TestViewRangeQueries(t *testing.T) {
	h := newHarness(t, 1)
	if err := h.engine.Define(Definition{
		Name: "byAge",
		Map:  MapSpec{Key: "doc.age", Value: "doc.name"},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.put(t, 0, fmt.Sprintf("u%d", i), fmt.Sprintf(`{"age": %d, "name": "user%d"}`, 20+i, i))
	}
	// Range [22, 25) exclusive end.
	rows := h.queryFresh(t, "byAge", QueryOptions{
		StartKey: 22.0, HasStart: true, EndKey: 25.0, HasEnd: true,
	})
	if len(rows) != 3 || rows[0].Key != 22.0 || rows[2].Key != 24.0 {
		t.Fatalf("range: %+v", rows)
	}
	// Inclusive end: "stopping on the last instance of key B".
	rows = h.queryFresh(t, "byAge", QueryOptions{
		StartKey: 22.0, HasStart: true, EndKey: 25.0, HasEnd: true, InclusiveEnd: true,
	})
	if len(rows) != 4 || rows[3].Key != 25.0 {
		t.Fatalf("inclusive range: %+v", rows)
	}
	// Descending.
	rows = h.queryFresh(t, "byAge", QueryOptions{Descending: true, Limit: 3})
	if len(rows) != 3 || rows[0].Key != 29.0 || rows[2].Key != 27.0 {
		t.Fatalf("descending: %+v", rows)
	}
	// Limit and skip.
	rows = h.queryFresh(t, "byAge", QueryOptions{Skip: 2, Limit: 2})
	if len(rows) != 2 || rows[0].Key != 22.0 {
		t.Fatalf("skip/limit: %+v", rows)
	}
	// Multi-key.
	rows = h.queryFresh(t, "byAge", QueryOptions{Keys: []any{21.0, 28.0}})
	if len(rows) != 2 {
		t.Fatalf("multi-key: %+v", rows)
	}
}

func TestViewReduceCount(t *testing.T) {
	h := newHarness(t, 2)
	if err := h.engine.Define(Definition{
		Name:   "countByCity",
		Map:    MapSpec{Key: "doc.city", Value: "doc.pop"},
		Reduce: "_count",
	}); err != nil {
		t.Fatal(err)
	}
	cities := []string{"SF", "NY", "SF", "LA", "SF", "NY"}
	for i, c := range cities {
		h.put(t, i%2, fmt.Sprintf("d%d", i), fmt.Sprintf(`{"city": %q, "pop": %d}`, c, i))
	}
	// Total count via pre-computed annotations.
	rows := h.queryFresh(t, "countByCity", QueryOptions{Reduce: true})
	if len(rows) != 1 || rows[0].Value != 6.0 {
		t.Fatalf("reduce all: %+v", rows)
	}
	// Grouped.
	rows = h.queryFresh(t, "countByCity", QueryOptions{Reduce: true, Group: true})
	want := map[string]float64{"LA": 1, "NY": 2, "SF": 3}
	if len(rows) != 3 {
		t.Fatalf("grouped: %+v", rows)
	}
	for _, r := range rows {
		if r.Value != want[r.Key.(string)] {
			t.Errorf("group %v = %v, want %v", r.Key, r.Value, want[r.Key.(string)])
		}
	}
	// Range-restricted reduce.
	rows = h.queryFresh(t, "countByCity", QueryOptions{Reduce: true, Key: "SF", HasKey: true})
	if rows[0].Value != 3.0 {
		t.Fatalf("key-restricted reduce: %+v", rows)
	}
}

func TestViewReduceSumAndStats(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Define(Definition{Name: "sumV", Map: MapSpec{Key: "doc.g", Value: "doc.n"}, Reduce: "_sum"})
	h.engine.Define(Definition{Name: "statsV", Map: MapSpec{Key: "doc.g", Value: "doc.n"}, Reduce: "_stats"})
	h.engine.Define(Definition{Name: "minV", Map: MapSpec{Key: "doc.g", Value: "doc.n"}, Reduce: "_min"})
	h.engine.Define(Definition{Name: "maxV", Map: MapSpec{Key: "doc.g", Value: "doc.n"}, Reduce: "_max"})
	for i := 1; i <= 4; i++ {
		h.put(t, 0, fmt.Sprintf("d%d", i), fmt.Sprintf(`{"g": "x", "n": %d}`, i))
	}
	if rows := h.queryFresh(t, "sumV", QueryOptions{Reduce: true}); rows[0].Value != 10.0 {
		t.Errorf("_sum: %+v", rows)
	}
	if rows := h.queryFresh(t, "minV", QueryOptions{Reduce: true}); rows[0].Value != 1.0 {
		t.Errorf("_min: %+v", rows)
	}
	if rows := h.queryFresh(t, "maxV", QueryOptions{Reduce: true}); rows[0].Value != 4.0 {
		t.Errorf("_max: %+v", rows)
	}
	rows := h.queryFresh(t, "statsV", QueryOptions{Reduce: true})
	st := rows[0].Value.(map[string]any)
	if st["sum"] != 10.0 || st["count"] != 4.0 || st["min"] != 1.0 || st["max"] != 4.0 || st["sumsqr"] != 30.0 {
		t.Errorf("_stats: %+v", st)
	}
}

func TestStaleOKDoesNotWait(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Define(profileView)
	h.put(t, 0, "u1", `{"name": "A", "email": "a@x.com"}`)
	// stale=ok may or may not see the write; it must not block and must
	// not error. (Determinism: after an explicit fresh query, the index
	// caught up, and stale=ok then sees everything.)
	if _, err := h.engine.Query(context.Background(), "profile", QueryOptions{Stale: StaleOK}); err != nil {
		t.Fatal(err)
	}
	h.queryFresh(t, "profile", QueryOptions{})
	rows, err := h.engine.Query(context.Background(), "profile", QueryOptions{Stale: StaleOK})
	if err != nil || len(rows) != 1 {
		t.Fatalf("stale=ok after catch-up: %+v %v", rows, err)
	}
}

func TestStaleFalseObservesPriorWrites(t *testing.T) {
	h := newHarness(t, 2)
	h.engine.Define(profileView)
	// Race: write a burst, then immediately query with stale=false. The
	// result must include every prior write, every time.
	for round := 0; round < 10; round++ {
		for i := 0; i < 20; i++ {
			h.put(t, i%2, fmt.Sprintf("r%dd%d", round, i), fmt.Sprintf(`{"name": "n%03d%02d", "email": "e"}`, round, i))
		}
		rows := h.queryFresh(t, "profile", QueryOptions{})
		want := (round + 1) * 20
		if len(rows) != want {
			t.Fatalf("round %d: %d rows, want %d", round, len(rows), want)
		}
	}
}

func TestDetachVBRemovesItsEntries(t *testing.T) {
	h := newHarness(t, 2)
	h.engine.Define(profileView)
	h.put(t, 0, "a", `{"name": "A", "email": "x"}`)
	h.put(t, 1, "b", `{"name": "B", "email": "y"}`)
	h.queryFresh(t, "profile", QueryOptions{})
	// Partition 1 migrates away.
	h.engine.DetachVB(1)
	rows, err := h.engine.Query(context.Background(), "profile", QueryOptions{Stale: StaleOK})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Key != "A" {
		t.Fatalf("after detach: %+v", rows)
	}
}

func TestDefineOnExistingDataBackfills(t *testing.T) {
	h := newHarness(t, 1)
	// Data exists before the view: initial materialization must index it.
	for i := 0; i < 25; i++ {
		h.put(t, 0, fmt.Sprintf("u%d", i), fmt.Sprintf(`{"name": "n%02d", "email": "e"}`, i))
	}
	if err := h.engine.Define(profileView); err != nil {
		t.Fatal(err)
	}
	rows := h.queryFresh(t, "profile", QueryOptions{})
	if len(rows) != 25 {
		t.Fatalf("backfill rows: %d", len(rows))
	}
}

func TestViewDDLErrors(t *testing.T) {
	h := newHarness(t, 1)
	if err := h.engine.Define(Definition{Name: "v", Map: MapSpec{Key: ""}}); err == nil {
		t.Error("empty key expression should fail")
	}
	if err := h.engine.Define(Definition{Name: "v", Map: MapSpec{Key: "doc.x ("}}); err == nil {
		t.Error("bad key expression should fail")
	}
	if err := h.engine.Define(Definition{Name: "v", Map: MapSpec{Key: "doc.x"}, Reduce: "_bogus"}); err == nil {
		t.Error("unknown reduce should fail")
	}
	if err := h.engine.Define(profileView); err != nil {
		t.Fatal(err)
	}
	if err := h.engine.Define(profileView); err != ErrViewExists {
		t.Errorf("duplicate define: %v", err)
	}
	if _, err := h.engine.Query(context.Background(), "ghost", QueryOptions{}); err != ErrNoSuchView {
		t.Errorf("query unknown view: %v", err)
	}
	if err := h.engine.Drop("ghost"); err != ErrNoSuchView {
		t.Errorf("drop unknown view: %v", err)
	}
	if _, err := h.engine.Query(context.Background(), "profile", QueryOptions{Reduce: true}); err == nil {
		t.Error("reduce on reduce-less view should fail")
	}
	if err := h.engine.Drop("profile"); err != nil {
		t.Fatal(err)
	}
	if got := h.engine.Names(); len(got) != 0 {
		t.Errorf("names after drop: %v", got)
	}
}

func TestBinaryDocumentsAreSkipped(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Define(profileView)
	h.put(t, 0, "blob", `this is not json {{{`)
	h.put(t, 0, "ok", `{"name": "A", "email": "x"}`)
	rows := h.queryFresh(t, "profile", QueryOptions{})
	if len(rows) != 1 {
		t.Fatalf("binary doc should not be indexed: %+v", rows)
	}
}

func TestCompositeArrayKeys(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Define(Definition{
		Name: "byCityAge",
		Map:  MapSpec{Key: "[doc.city, doc.age]", Value: "doc.name"},
	})
	h.put(t, 0, "u1", `{"city": "SF", "age": 30, "name": "A"}`)
	h.put(t, 0, "u2", `{"city": "SF", "age": 25, "name": "B"}`)
	h.put(t, 0, "u3", `{"city": "NY", "age": 40, "name": "C"}`)
	// All SF entries via composite range: ["SF"] <= k < ["SF", {}].
	rows := h.queryFresh(t, "byCityAge", QueryOptions{
		StartKey: []any{"SF"}, HasStart: true,
		EndKey: []any{"SF", map[string]any{}}, HasEnd: true,
	})
	if len(rows) != 2 || rows[0].Value != "B" || rows[1].Value != "A" {
		t.Fatalf("composite range: %+v", rows)
	}
}

func TestMergeRowsScatterGather(t *testing.T) {
	n1 := []Row{{Key: "a", Value: 1.0, ID: "d1"}, {Key: "c", Value: 3.0, ID: "d3"}}
	n2 := []Row{{Key: "b", Value: 2.0, ID: "d2"}}
	merged := MergeRows("", false, [][]Row{n1, n2})
	if len(merged) != 3 || merged[0].Key != "a" || merged[1].Key != "b" || merged[2].Key != "c" {
		t.Fatalf("merge: %+v", merged)
	}
	// Reduced merge.
	r := MergeRows("_sum", false, [][]Row{{{Value: 10.0}}, {{Value: 5.0}}})
	if len(r) != 1 || r[0].Value != 15.0 {
		t.Fatalf("reduced merge: %+v", r)
	}
	r = MergeRows("_min", false, [][]Row{{{Value: 10.0}}, {{Value: 5.0}}})
	if r[0].Value != 5.0 {
		t.Fatalf("min merge: %+v", r)
	}
	r = MergeRows("_max", false, [][]Row{{{Value: 10.0}}, {{Value: 5.0}}})
	if r[0].Value != 10.0 {
		t.Fatalf("max merge: %+v", r)
	}
	// Stats merge.
	s1 := map[string]any{"sum": 3.0, "count": 2.0, "min": 1.0, "max": 2.0, "sumsqr": 5.0}
	s2 := map[string]any{"sum": 3.0, "count": 1.0, "min": 3.0, "max": 3.0, "sumsqr": 9.0}
	r = MergeRows("_stats", false, [][]Row{{{Value: s1}}, {{Value: s2}}})
	st := r[0].Value.(map[string]any)
	if st["sum"] != 6.0 || st["count"] != 3.0 || st["min"] != 1.0 || st["max"] != 3.0 {
		t.Fatalf("stats merge: %+v", st)
	}
	// Grouped merge: same keys from different nodes combine.
	g1 := []Row{{Key: "SF", Value: 2.0}}
	g2 := []Row{{Key: "NY", Value: 1.0}, {Key: "SF", Value: 3.0}}
	r = MergeRows("_count", true, [][]Row{g1, g2})
	if len(r) != 2 {
		t.Fatalf("grouped merge: %+v", r)
	}
	for _, row := range r {
		if row.Key == "SF" && row.Value != 5.0 {
			t.Errorf("SF merged = %v", row.Value)
		}
	}
}

func TestProcessedVector(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Define(profileView)
	h.put(t, 0, "u1", `{"name": "A", "email": "x"}`)
	h.queryFresh(t, "profile", QueryOptions{})
	vec, err := h.engine.Processed("profile")
	if err != nil || vec[0] == 0 {
		t.Fatalf("processed: %v %v", vec, err)
	}
	if _, err := h.engine.Processed("nope"); err != ErrNoSuchView {
		t.Errorf("processed unknown: %v", err)
	}
}

func TestStaleFalseTimeBound(t *testing.T) {
	// Guard against waitFor hanging forever when vector includes an
	// unattached vbucket with zero target.
	h := newHarness(t, 1)
	h.engine.Define(profileView)
	done := make(chan struct{})
	go func() {
		h.engine.Query(context.Background(), "profile", QueryOptions{Stale: StaleFalse, WaitSeqnos: map[int]uint64{0: 0, 9: 0}})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stale=false with zero targets should not block")
	}
}

func TestEmitNullVsMissing(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Define(Definition{Name: "v", Map: MapSpec{Key: "doc.k", Value: "doc.v"}})
	h.put(t, 0, "withNull", `{"k": null, "v": 1}`)
	h.put(t, 0, "noKey", `{"v": 2}`) // k MISSING -> not emitted
	rows := h.queryFresh(t, "v", QueryOptions{})
	if len(rows) != 1 || rows[0].ID != "withNull" {
		t.Fatalf("null/missing emit: %+v", rows)
	}
	if value.KindOf(rows[0].Key) != value.NULL {
		t.Errorf("null key preserved: %v", rows[0].Key)
	}
}
