package ycsb

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"couchgo/internal/metrics"
)

// DB is the system under test. The couchgo adapter lives in CouchDB
// (db.go); any other store can implement this for baseline comparison.
type DB interface {
	Read(key string) error
	Update(key string, value []byte) error
	Insert(key string, value []byte) error
	// Scan runs a short range query: keys >= startKey, LIMIT limit.
	// Workload E issues these through N1QL in the paper.
	Scan(startKey string, limit int) (int, error)
}

// OpKind enumerates YCSB operations.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
)

// Workload is a YCSB workload mix.
type Workload struct {
	Name string
	// Proportions sum to 1.
	ReadProportion   float64
	UpdateProportion float64
	InsertProportion float64
	ScanProportion   float64
	// Distribution: "zipfian", "uniform", or "latest".
	Distribution string
	// MaxScanLength bounds workload E's range size (uniform 1..Max).
	MaxScanLength int
}

// The standard core workloads (YCSB wiki definitions).
var (
	// WorkloadA: update heavy, 50/50 — Figure 15.
	WorkloadA = Workload{Name: "A", ReadProportion: 0.5, UpdateProportion: 0.5, Distribution: "zipfian"}
	// WorkloadB: read mostly, 95/5.
	WorkloadB = Workload{Name: "B", ReadProportion: 0.95, UpdateProportion: 0.05, Distribution: "zipfian"}
	// WorkloadC: read only.
	WorkloadC = Workload{Name: "C", ReadProportion: 1.0, Distribution: "zipfian"}
	// WorkloadD: read latest, 95/5 read/insert.
	WorkloadD = Workload{Name: "D", ReadProportion: 0.95, InsertProportion: 0.05, Distribution: "latest"}
	// WorkloadE: short scans, 95/5 scan/insert — Figure 16.
	WorkloadE = Workload{Name: "E", ScanProportion: 0.95, InsertProportion: 0.05, Distribution: "zipfian", MaxScanLength: 100}
)

// WorkloadByName resolves "a".."e".
func WorkloadByName(name string) (Workload, error) {
	switch strings.ToLower(name) {
	case "a":
		return WorkloadA, nil
	case "b":
		return WorkloadB, nil
	case "c":
		return WorkloadC, nil
	case "d":
		return WorkloadD, nil
	case "e":
		return WorkloadE, nil
	}
	return Workload{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// Runner drives one measurement.
type Runner struct {
	DB       DB
	Workload Workload
	// RecordCount is the loaded data set size.
	RecordCount int64
	// Threads is the total client thread count (the paper sweeps
	// 4 clients × 12..32 threads = 48..128).
	Threads int
	// Ops is the total operation count to execute.
	Ops int
	// Record shapes generated values.
	Record RecordBuilder
}

// Result summarizes one run.
type Result struct {
	Workload   string
	Threads    int
	Ops        int
	Errors     int
	Elapsed    time.Duration
	Throughput float64 // ops/sec
	// Latency percentiles over every operation (log₂-bucketed
	// histogram, so tail quantiles are interpolated within a bucket).
	P50, P95, P99, P999 time.Duration
	// Max is the slowest single operation observed.
	Max time.Duration
	// AllocsPerOp is process-wide heap allocations per measured
	// operation (runtime mallocs delta / ops): client, server, and
	// background goroutines combined for in-process runs — the GC
	// pressure one op costs the whole system.
	AllocsPerOp float64
}

// String renders one figure row.
func (r Result) String() string {
	return fmt.Sprintf("workload=%s threads=%3d ops=%8d errors=%d elapsed=%8s throughput=%10.0f ops/sec p50=%-10s p95=%-10s p99=%-10s p99.9=%-10s max=%-12s allocs/op=%.1f",
		r.Workload, r.Threads, r.Ops, r.Errors, r.Elapsed.Round(time.Millisecond), r.Throughput, r.P50, r.P95, r.P99, r.P999, r.Max, r.AllocsPerOp)
}

// Load inserts the initial data set using the runner's thread count.
func (r *Runner) Load() error {
	var nextKey atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	threads := r.Threads
	if threads <= 0 {
		threads = 8
	}
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rngPool.Get().(*rand.Rand)
			defer rngPool.Put(rng)
			for {
				i := nextKey.Add(1) - 1
				if i >= r.RecordCount {
					return
				}
				if err := r.DB.Insert(KeyName(i), r.Record.Build(rng)); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}

// Run executes the workload and measures throughput and latency.
func (r *Runner) Run() Result {
	w := r.Workload
	insertCounter := &atomic.Int64{}
	insertCounter.Store(r.RecordCount)
	var chooser Generator
	switch w.Distribution {
	case "uniform":
		chooser = &Uniform{N: r.RecordCount}
	case "latest":
		chooser = NewLatest(insertCounter)
	default:
		chooser = NewScrambledZipfian(r.RecordCount)
	}

	var opsIssued atomic.Int64
	var errs atomic.Int64
	// Latency histogram: atomic log₂ buckets, so every operation is
	// recorded without per-op allocation or a collector goroutine.
	hist := metrics.NewHistogram()

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < r.Threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rngPool.Get().(*rand.Rand)
			defer rngPool.Put(rng)
			for {
				if opsIssued.Add(1) > int64(r.Ops) {
					return
				}
				op := pickOp(w, rng)
				t0 := time.Now()
				if err := r.doOp(op, chooser, insertCounter, rng); err != nil {
					errs.Add(1)
				}
				hist.ObserveSince(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	res := Result{
		Workload: w.Name,
		Threads:  r.Threads,
		Ops:      r.Ops,
		Errors:   int(errs.Load()),
		Elapsed:  elapsed,
	}
	if elapsed > 0 {
		res.Throughput = float64(r.Ops) / elapsed.Seconds()
	}
	if r.Ops > 0 {
		res.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(r.Ops)
	}
	if snap := hist.Snapshot(); snap.Count > 0 {
		res.P50 = snap.QuantileDuration(0.50)
		res.P95 = snap.QuantileDuration(0.95)
		res.P99 = snap.QuantileDuration(0.99)
		res.P999 = snap.QuantileDuration(0.999)
		res.Max = snap.MaxDuration()
	}
	return res
}

func pickOp(w Workload, r *rand.Rand) OpKind {
	f := r.Float64()
	switch {
	case f < w.ReadProportion:
		return OpRead
	case f < w.ReadProportion+w.UpdateProportion:
		return OpUpdate
	case f < w.ReadProportion+w.UpdateProportion+w.InsertProportion:
		return OpInsert
	default:
		return OpScan
	}
}

func (r *Runner) doOp(op OpKind, chooser Generator, insertCounter *atomic.Int64, rng *rand.Rand) error {
	switch op {
	case OpRead:
		return r.DB.Read(KeyName(chooser.Next(rng)))
	case OpUpdate:
		return r.DB.Update(KeyName(chooser.Next(rng)), r.Record.Build(rng))
	case OpInsert:
		i := insertCounter.Add(1) - 1
		return r.DB.Insert(KeyName(i), r.Record.Build(rng))
	case OpScan:
		max := r.Workload.MaxScanLength
		if max <= 0 {
			max = 100
		}
		limit := 1 + rng.Intn(max)
		_, err := r.DB.Scan(KeyName(chooser.Next(rng)), limit)
		return err
	}
	return nil
}
