package ycsb

import (
	"context"
	"fmt"

	"couchgo/internal/core"
	"couchgo/internal/executor"
)

// CouchDB adapts a couchgo cluster to the YCSB DB interface, as the
// paper's "Couchbase adapter for YCSB was built to operate against a
// Couchbase Server cluster ... and provides a rich set of
// configuration options, including support for the N1QL query
// language."
type CouchDB struct {
	Cluster *core.Cluster
	Client  *core.Client
	Bucket  string
	// ScanConsistency for workload E queries (default not_bounded, as
	// benchmark scans favour latency).
	ScanConsistency executor.Consistency
}

// NewCouchDB opens the adapter on a bucket.
func NewCouchDB(c *core.Cluster, bucket string) (*CouchDB, error) {
	cl, err := c.OpenBucket(bucket)
	if err != nil {
		return nil, err
	}
	return &CouchDB{Cluster: c, Client: cl, Bucket: bucket}, nil
}

// Read implements DB.
func (db *CouchDB) Read(key string) error {
	_, err := db.Client.Get(context.Background(), key)
	return err
}

// Update implements DB.
func (db *CouchDB) Update(key string, value []byte) error {
	_, err := db.Client.Set(context.Background(), key, value, 0)
	return err
}

// Insert implements DB.
func (db *CouchDB) Insert(key string, value []byte) error {
	_, err := db.Client.Set(context.Background(), key, value, 0)
	return err
}

// scanStatement is the appendix's workload E query:
// "SELECT meta().id AS id FROM `bucket` WHERE meta().id >= '$1' LIMIT $2".
func (db *CouchDB) scanStatement() string {
	return fmt.Sprintf("SELECT meta().id AS id FROM `%s` WHERE meta().id >= $1 LIMIT $2", db.Bucket)
}

// Scan implements DB via N1QL.
func (db *CouchDB) Scan(startKey string, limit int) (int, error) {
	res, err := db.Cluster.Query(db.scanStatement(), executor.Options{
		Params:      map[string]any{"1": startKey, "2": float64(limit)},
		Consistency: db.ScanConsistency,
	})
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}
