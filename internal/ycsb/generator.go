// Package ycsb reimplements the Yahoo! Cloud Serving Benchmark (Cooper
// et al. [14]) workload machinery the paper's appendix uses: key
// choosers (uniform, zipfian, latest), record generation, the standard
// workload mixes (A through E), and a multi-threaded measurement
// runner. The paper evaluates workload A (50/50 read-update, Figure
// 15) and workload E (short N1QL range scans, Figure 16).
package ycsb

import (
	"math"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
)

// Generator produces the next key number to operate on.
type Generator interface {
	// Next returns a key number in [0, n) where n is the current
	// record count. r is the calling goroutine's private RNG.
	Next(r *rand.Rand) int64
}

// Uniform picks keys uniformly.
type Uniform struct{ N int64 }

// Next implements Generator.
func (u *Uniform) Next(r *rand.Rand) int64 { return r.Int63n(u.N) }

// Zipfian is YCSB's ZipfianGenerator: a zipf-distributed chooser with
// the standard 0.99 constant, using the Gray et al. rejection-free
// formula. Safe for concurrent use.
type Zipfian struct {
	n     int64
	theta float64

	alpha, zetan, eta, zeta2 float64
}

// ZipfianConstant is YCSB's default skew.
const ZipfianConstant = 0.99

// NewZipfian builds a zipfian chooser over [0, n).
func NewZipfian(n int64) *Zipfian {
	z := &Zipfian{n: n, theta: ZipfianConstant}
	z.zeta2 = zetaStatic(2, z.theta)
	z.zetan = zetaStatic(n, z.theta)
	z.alpha = 1.0 / (1.0 - z.theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-z.theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements Generator.
func (z *Zipfian) Next(r *rand.Rand) int64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledZipfian spreads the zipfian's popular items over the whole
// keyspace by hashing, as YCSB does, so hot keys land on different
// partitions.
type ScrambledZipfian struct {
	z *Zipfian
	n int64
}

// NewScrambledZipfian builds the standard YCSB request chooser.
func NewScrambledZipfian(n int64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(n), n: n}
}

// Next implements Generator.
func (s *ScrambledZipfian) Next(r *rand.Rand) int64 {
	return int64(fnv64(uint64(s.z.Next(r)))) % s.n
}

func fnv64(v uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	if int64(h) < 0 {
		h = -h
	}
	return h
}

// Latest skews toward recently inserted records (workload D).
type Latest struct {
	z       *Zipfian
	counter *atomic.Int64
}

// NewLatest builds a latest-skewed chooser following counter.
func NewLatest(counter *atomic.Int64) *Latest {
	return &Latest{z: NewZipfian(counter.Load()), counter: counter}
}

// Next implements Generator.
func (l *Latest) Next(r *rand.Rand) int64 {
	max := l.counter.Load()
	off := l.z.Next(r)
	if off >= max {
		off = max - 1
	}
	return max - 1 - off
}

// KeyName renders key number i as a YCSB-style ordered key
// ("user%012d"). Zero padding keeps lexicographic order equal to
// numeric order, which the scan workload (E) relies on. Rendered by
// hand: the client generator is on the benchmark's measured path, and
// fmt.Sprintf was a visible fraction of client CPU.
func KeyName(i int64) string {
	var b [16]byte
	b[0], b[1], b[2], b[3] = 'u', 's', 'e', 'r'
	for p := 15; p >= 4; p-- {
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[:])
}

// RecordBuilder generates YCSB documents: fieldcount fields of
// fieldlength printable bytes ("a data set of 10 million documents" in
// the paper's run; field shape per YCSB defaults).
type RecordBuilder struct {
	FieldCount  int
	FieldLength int
}

// DefaultRecord matches YCSB's core defaults (10 × 100 B ≈ 1 KB/doc).
var DefaultRecord = RecordBuilder{FieldCount: 10, FieldLength: 100}

// fieldChars has 64 entries so one 6-bit chunk of a single Uint64
// maps straight to a character — ten payload bytes per RNG call
// instead of one Intn (with its modulo-rejection loop) per byte. None
// of the characters need JSON escaping.
var fieldChars = []byte("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_")

// Build renders one record as JSON.
func (rb RecordBuilder) Build(r *rand.Rand) []byte {
	fc := rb.FieldCount
	if fc <= 0 {
		fc = 10
	}
	fl := rb.FieldLength
	if fl <= 0 {
		fl = 100
	}
	buf := make([]byte, 0, fc*(fl+12)+2)
	buf = append(buf, '{')
	// One draw from the caller's Rand seeds an inline splitmix64: a
	// 1 KB record needs ~100 64-bit draws, and at driver rates the
	// method-dispatch cost of math/rand shows up in the op budget.
	s := r.Uint64()
	for f := 0; f < fc; f++ {
		if f > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `"field`...)
		buf = strconv.AppendInt(buf, int64(f), 10)
		buf = append(buf, '"', ':', '"')
		var bits uint64
		nbits := 0
		for i := 0; i < fl; i++ {
			if nbits == 0 {
				s += 0x9e3779b97f4a7c15
				z := s
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				bits = z ^ (z >> 31)
				nbits = 10 // ten 6-bit chunks per draw
			}
			buf = append(buf, fieldChars[bits&63])
			bits >>= 6
			nbits--
		}
		buf = append(buf, '"')
	}
	return append(buf, '}')
}

// rngPool hands each worker goroutine a private RNG.
var rngPool = sync.Pool{New: func() any {
	return rand.New(rand.NewSource(rand.Int63()))
}}
