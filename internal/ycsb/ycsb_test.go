package ycsb

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/executor"
)

func TestUniformInRange(t *testing.T) {
	u := &Uniform{N: 100}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := u.Next(r)
		if v < 0 || v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestZipfianSkewAndRange(t *testing.T) {
	z := NewZipfian(1000)
	r := rand.New(rand.NewSource(2))
	counts := map[int64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		v := z.Next(r)
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Key 0 should be by far the most popular (zipf head).
	if counts[0] < n/20 {
		t.Errorf("zipfian head not hot: %d of %d", counts[0], n)
	}
	if counts[0] <= counts[500] {
		t.Error("no skew detected")
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	s := NewScrambledZipfian(1000)
	r := rand.New(rand.NewSource(3))
	seen := map[int64]bool{}
	for i := 0; i < 5000; i++ {
		v := s.Next(r)
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 100 {
		t.Errorf("scrambled zipfian touched only %d keys", len(seen))
	}
}

func TestLatestFavoursRecent(t *testing.T) {
	var counter atomic.Int64
	counter.Store(1000)
	l := NewLatest(&counter)
	r := rand.New(rand.NewSource(4))
	recent := 0
	const n = 10000
	for i := 0; i < n; i++ {
		v := l.Next(r)
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		if v >= 900 {
			recent++
		}
	}
	if recent < n/3 {
		t.Errorf("latest distribution not recent-heavy: %d/%d in top decile", recent, n)
	}
}

func TestKeyNameOrdering(t *testing.T) {
	if KeyName(5) >= KeyName(10) {
		t.Error("zero padding broken: lexicographic != numeric order")
	}
	if KeyName(999999) >= KeyName(1000000) {
		t.Error("ordering broken at rollover")
	}
}

func TestRecordBuilderShape(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	rec := DefaultRecord.Build(r)
	s := string(rec)
	if !strings.HasPrefix(s, `{"field0":"`) {
		t.Errorf("record: %.60s", s)
	}
	for f := 0; f < 10; f++ {
		if !strings.Contains(s, fmt.Sprintf(`"field%d":"`, f)) {
			t.Errorf("missing field%d", f)
		}
	}
	if len(rec) < 10*100 {
		t.Errorf("record too small: %d", len(rec))
	}
}

func TestWorkloadByName(t *testing.T) {
	for _, n := range []string{"a", "B", "c", "D", "e"} {
		if _, err := WorkloadByName(n); err != nil {
			t.Errorf("workload %s: %v", n, err)
		}
	}
	if _, err := WorkloadByName("z"); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestPickOpProportions(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	counts := map[OpKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[pickOp(WorkloadA, r)]++
	}
	reads := float64(counts[OpRead]) / n
	if reads < 0.45 || reads > 0.55 {
		t.Errorf("workload A read fraction: %v", reads)
	}
	counts = map[OpKind]int{}
	for i := 0; i < n; i++ {
		counts[pickOp(WorkloadE, r)]++
	}
	scans := float64(counts[OpScan]) / n
	if scans < 0.90 || scans > 0.99 {
		t.Errorf("workload E scan fraction: %v", scans)
	}
}

// End-to-end: run tiny measurements against a real in-process cluster.
func newYCSBCluster(t *testing.T) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Config{Dir: t.TempDir(), NumVBuckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 2; i++ {
		c.AddNode(cmap.NodeID(fmt.Sprintf("n%d", i)), cmap.AllServices)
	}
	if err := c.CreateBucket("ycsb", core.BucketOptions{}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWorkloadAEndToEnd(t *testing.T) {
	c := newYCSBCluster(t)
	db, err := NewCouchDB(c, "ycsb")
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{DB: db, Workload: WorkloadA, RecordCount: 200, Threads: 4, Ops: 1000, Record: RecordBuilder{FieldCount: 2, FieldLength: 10}}
	if err := r.Load(); err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	if res.Errors != 0 {
		t.Fatalf("errors: %+v", res)
	}
	if res.Throughput <= 0 || res.P50 <= 0 {
		t.Fatalf("bogus result: %+v", res)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestWorkloadEEndToEnd(t *testing.T) {
	c := newYCSBCluster(t)
	if _, err := c.Query("CREATE PRIMARY INDEX ON `ycsb`", executor.Options{}); err != nil {
		t.Fatal(err)
	}
	db, err := NewCouchDB(c, "ycsb")
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{DB: db, Workload: WorkloadE, RecordCount: 200, Threads: 4, Ops: 200, Record: RecordBuilder{FieldCount: 2, FieldLength: 10}}
	if err := r.Load(); err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	if res.Errors != 0 {
		t.Fatalf("errors: %+v", res)
	}
	// A direct scan returns ordered keys honoring the limit.
	n, err := db.Scan(KeyName(10), 5)
	if err != nil || n != 5 {
		t.Fatalf("scan: %d %v", n, err)
	}
}
