// Package fts implements the full-text search service of the paper's
// near-term plans (§6.1.3): "This is typically based on a reverse
// index, where all the words within the data are indexed to be able to
// do term-based, phrase-based, and/or prefix-based searches. Full-text
// search is another type of service ... that will receive data
// mutations via in-memory DCP and will be able to be scaled up or out
// independently."
//
// The engine consumes per-vBucket DCP feeds, tokenizes the configured
// document fields, and maintains an inverted index (term → postings
// with positions) supporting term, prefix, and phrase queries.
package fts

import (
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"
	"unicode"

	"couchgo/internal/btree"
	"couchgo/internal/dcp"
	"couchgo/internal/feed"
	"couchgo/internal/value"
)

// Errors returned by the FTS engine.
var (
	ErrNoSuchIndex = errors.New("fts: no such index")
	ErrIndexExists = errors.New("fts: index already exists")
)

// IndexDef declares a full-text index. Fields lists the document paths
// to index; empty indexes every top-level string field.
type IndexDef struct {
	Name   string
	Fields []string
}

// Hit is one search result.
type Hit struct {
	ID string
	// Score is term frequency (matches in the document); results sort
	// by descending score then ID.
	Score int
}

// posting records one document's occurrences of a term.
type posting struct {
	positions []int
}

// ftsIndex is one index's state.
type ftsIndex struct {
	def    IndexDef
	fields []value.Path

	mu        sync.Mutex
	terms     *btree.Tree         // term bytes -> map[docID]*posting
	docTerms  map[string][]string // back index: docID -> terms
	processed map[int]uint64      // vb -> seqno
	cond      *sync.Cond
	closed    bool
}

// Engine is the FTS service instance for one bucket. DCP consumption
// goes through the shared feed layer: each index subscribes to the
// engine's hub as one named consumer.
type Engine struct {
	hub *feed.Hub

	mu      sync.Mutex
	indexes map[string]*ftsIndex
}

// NewEngine creates an empty FTS engine.
func NewEngine() *Engine {
	return &Engine{hub: feed.NewHub("fts"), indexes: make(map[string]*ftsIndex)}
}

// Define creates an index and begins building it over attached
// vBuckets via DCP backfill.
func (e *Engine) Define(def IndexDef) error {
	fi := &ftsIndex{
		def:       def,
		terms:     btree.New(nil),
		docTerms:  make(map[string][]string),
		processed: make(map[int]uint64),
	}
	fi.cond = sync.NewCond(&fi.mu)
	for _, f := range def.Fields {
		p, ok := value.ParsePath(f)
		if !ok {
			return errors.New("fts: bad field path " + f)
		}
		fi.fields = append(fi.fields, p)
	}
	e.mu.Lock()
	if _, ok := e.indexes[def.Name]; ok {
		e.mu.Unlock()
		return ErrIndexExists
	}
	e.indexes[def.Name] = fi
	e.mu.Unlock()
	if _, err := e.hub.Subscribe("fts:"+def.Name, fi); err != nil {
		e.mu.Lock()
		delete(e.indexes, def.Name)
		e.mu.Unlock()
		fi.close()
		return err
	}
	return nil
}

// Drop removes an index.
func (e *Engine) Drop(name string) error {
	e.mu.Lock()
	fi, ok := e.indexes[name]
	delete(e.indexes, name)
	e.mu.Unlock()
	if !ok {
		return ErrNoSuchIndex
	}
	e.hub.Unsubscribe("fts:" + name)
	fi.close()
	return nil
}

// AttachVB begins indexing a vBucket's mutations. Idempotent for the
// same producer.
func (e *Engine) AttachVB(vb int, p dcp.StreamSource) error {
	return e.hub.AttachVB(vb, p)
}

// DetachVB stops indexing a vBucket and removes its entries.
func (e *Engine) DetachVB(vb int) {
	e.hub.DetachVB(vb)
	e.mu.Lock()
	list := make([]*ftsIndex, 0, len(e.indexes))
	for _, fi := range e.indexes {
		list = append(list, fi)
	}
	e.mu.Unlock()
	for _, fi := range list {
		fi.Rollback(vb, 0)
	}
}

// FeedStats describes the engine's feeds (one per index).
func (e *Engine) FeedStats() []feed.Stat {
	return e.hub.Stats()
}

// Close stops everything.
func (e *Engine) Close() {
	e.hub.Close()
	e.mu.Lock()
	list := make([]*ftsIndex, 0, len(e.indexes))
	for _, fi := range e.indexes {
		list = append(list, fi)
	}
	e.indexes = make(map[string]*ftsIndex)
	e.mu.Unlock()
	for _, fi := range list {
		fi.close()
	}
}

// Rollback implements feed.Rollbacker: drop this vBucket's documents
// and seqno state so the feed can re-stream the partition from the
// promoted copy's (shorter) history.
func (fi *ftsIndex) Rollback(vb int, _ uint64) uint64 {
	fi.mu.Lock()
	delete(fi.processed, vb)
	// The back index has no vb field; the vb marker lives in the
	// docTerms key.
	var drop []string
	for dockey := range fi.docTerms {
		if docVB(dockey) == vb {
			drop = append(drop, dockey)
		}
	}
	for _, dockey := range drop {
		fi.removeDocLocked(dockey)
	}
	fi.mu.Unlock()
	return 0
}

func (fi *ftsIndex) close() {
	fi.mu.Lock()
	fi.closed = true
	fi.cond.Broadcast()
	fi.mu.Unlock()
}

// docKey packs (vb, docID) into the back-index key.
func docKey(vb int, id string) string { return strconv.Itoa(vb) + "\x00" + id }

func docVB(dockey string) int {
	i := strings.IndexByte(dockey, 0)
	if i < 0 {
		return -1
	}
	n, err := strconv.Atoi(dockey[:i])
	if err != nil {
		return -1
	}
	return n
}

func docID(dockey string) string {
	i := strings.IndexByte(dockey, 0)
	return dockey[i+1:]
}

// Tokenize lowercases and splits text on non-alphanumeric runes.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// tokensOf extracts the indexable token stream from a document,
// concatenating indexed fields with a position gap so phrases never
// match across field boundaries.
func (fi *ftsIndex) tokensOf(doc any) []string {
	var out []string
	addText := func(s string) {
		if len(out) > 0 {
			out = append(out, "") // field boundary gap
		}
		out = append(out, Tokenize(s)...)
	}
	if len(fi.fields) == 0 {
		for _, name := range value.FieldNames(doc) {
			if s, ok := value.Field(doc, name).(string); ok {
				addText(s)
			}
		}
		return out
	}
	for _, p := range fi.fields {
		v := p.Eval(doc)
		switch t := v.(type) {
		case string:
			addText(t)
		case []any:
			for _, el := range t {
				if s, ok := el.(string); ok {
					addText(s)
				}
			}
		}
	}
	return out
}

// Apply implements feed.Consumer: index one mutation.
func (fi *ftsIndex) Apply(vb int, m dcp.Mutation) {
	var tokens []string
	if !m.Deleted {
		if doc, ok := value.Parse(m.Value); ok {
			tokens = fi.tokensOf(doc)
		}
	}
	dockey := docKey(vb, m.Key)
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.closed {
		return
	}
	fi.removeDocLocked(dockey)
	if len(tokens) > 0 {
		byTerm := map[string][]int{}
		for pos, tok := range tokens {
			if tok == "" {
				continue
			}
			byTerm[tok] = append(byTerm[tok], pos)
		}
		var termList []string
		for term, positions := range byTerm {
			termList = append(termList, term)
			var postings map[string]*posting
			if v, ok := fi.terms.Get([]byte(term)); ok {
				postings = v.(map[string]*posting)
			} else {
				postings = map[string]*posting{}
				fi.terms.Set([]byte(term), postings)
			}
			postings[dockey] = &posting{positions: positions}
		}
		fi.docTerms[dockey] = termList
	}
	if m.Seqno > fi.processed[vb] {
		fi.processed[vb] = m.Seqno
	}
	fi.cond.Broadcast()
}

func (fi *ftsIndex) removeDocLocked(dockey string) {
	for _, term := range fi.docTerms[dockey] {
		if v, ok := fi.terms.Get([]byte(term)); ok {
			postings := v.(map[string]*posting)
			delete(postings, dockey)
			if len(postings) == 0 {
				fi.terms.Delete([]byte(term))
			}
		}
	}
	delete(fi.docTerms, dockey)
}

// waitFor blocks until the index processed the given seqno vector.
func (fi *ftsIndex) waitFor(seqnos map[int]uint64) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	for !fi.closed {
		ok := true
		for vb, want := range seqnos {
			if want > 0 && fi.processed[vb] < want {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		fi.cond.Wait()
	}
}

// SearchOptions tune a query.
type SearchOptions struct {
	Limit int
	// WaitSeqnos requests read-your-own-writes consistency, as with
	// stale=false view queries.
	WaitSeqnos map[int]uint64
}

// SearchTerm finds documents containing the exact term.
func (e *Engine) SearchTerm(index, term string, opts SearchOptions) ([]Hit, error) {
	fi, err := e.index(index)
	if err != nil {
		return nil, err
	}
	if opts.WaitSeqnos != nil {
		fi.waitFor(opts.WaitSeqnos)
	}
	term = strings.ToLower(term)
	fi.mu.Lock()
	defer fi.mu.Unlock()
	scores := map[string]int{}
	if v, ok := fi.terms.Get([]byte(term)); ok {
		for dockey, p := range v.(map[string]*posting) {
			scores[docID(dockey)] += len(p.positions)
		}
	}
	return rankHits(scores, opts.Limit), nil
}

// SearchPrefix finds documents containing any term with the prefix.
func (e *Engine) SearchPrefix(index, prefix string, opts SearchOptions) ([]Hit, error) {
	fi, err := e.index(index)
	if err != nil {
		return nil, err
	}
	if opts.WaitSeqnos != nil {
		fi.waitFor(opts.WaitSeqnos)
	}
	prefix = strings.ToLower(prefix)
	lo := []byte(prefix)
	hi := append([]byte(prefix), 0xFF)
	fi.mu.Lock()
	defer fi.mu.Unlock()
	scores := map[string]int{}
	fi.terms.Ascend(lo, hi, func(_ []byte, v any) bool {
		for dockey, p := range v.(map[string]*posting) {
			scores[docID(dockey)] += len(p.positions)
		}
		return true
	})
	return rankHits(scores, opts.Limit), nil
}

// SearchPhrase finds documents containing the exact token sequence.
func (e *Engine) SearchPhrase(index, phrase string, opts SearchOptions) ([]Hit, error) {
	fi, err := e.index(index)
	if err != nil {
		return nil, err
	}
	if opts.WaitSeqnos != nil {
		fi.waitFor(opts.WaitSeqnos)
	}
	tokens := Tokenize(phrase)
	if len(tokens) == 0 {
		return nil, nil
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	// Candidate docs: postings of the first token.
	first, ok := fi.terms.Get([]byte(tokens[0]))
	if !ok {
		return nil, nil
	}
	scores := map[string]int{}
	for dockey, p0 := range first.(map[string]*posting) {
		count := 0
		for _, start := range p0.positions {
			match := true
			for i := 1; i < len(tokens); i++ {
				v, ok := fi.terms.Get([]byte(tokens[i]))
				if !ok {
					match = false
					break
				}
				pi, ok := v.(map[string]*posting)[dockey]
				if !ok || !containsPos(pi.positions, start+i) {
					match = false
					break
				}
			}
			if match {
				count++
			}
		}
		if count > 0 {
			scores[docID(dockey)] += count
		}
	}
	return rankHits(scores, opts.Limit), nil
}

func containsPos(sorted []int, want int) bool {
	i := sort.SearchInts(sorted, want)
	return i < len(sorted) && sorted[i] == want
}

func rankHits(scores map[string]int, limit int) []Hit {
	hits := make([]Hit, 0, len(scores))
	for id, s := range scores {
		hits = append(hits, Hit{ID: id, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

func (e *Engine) index(name string) (*ftsIndex, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fi, ok := e.indexes[name]
	if !ok {
		return nil, ErrNoSuchIndex
	}
	return fi, nil
}

// Names lists defined indexes.
func (e *Engine) Names() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for n := range e.indexes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
