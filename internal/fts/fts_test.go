package fts

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"couchgo/internal/storage"
	"couchgo/internal/vbucket"
)

type harness struct {
	engine *Engine
	vbs    []*vbucket.VBucket
}

func newHarness(t *testing.T, nvb int) *harness {
	t.Helper()
	h := &harness{engine: NewEngine()}
	dir := t.TempDir()
	for i := 0; i < nvb; i++ {
		f, err := storage.Open(filepath.Join(dir, fmt.Sprintf("vb%d.couch", i)), false)
		if err != nil {
			t.Fatal(err)
		}
		vb := vbucket.New(i, f, vbucket.Active, vbucket.Config{})
		h.vbs = append(h.vbs, vb)
		if err := h.engine.AttachVB(i, vb.Producer()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { vb.Close(); f.Close() })
	}
	t.Cleanup(h.engine.Close)
	return h
}

func (h *harness) put(t *testing.T, vb int, key, doc string) {
	t.Helper()
	if _, err := h.vbs[vb].Set(context.Background(), key, []byte(doc), 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func (h *harness) fresh() map[int]uint64 {
	out := map[int]uint64{}
	for _, vb := range h.vbs {
		out[vb.ID] = vb.HighSeqno()
	}
	return out
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! the-quick_brown 42fox")
	want := []string{"hello", "world", "the", "quick", "brown", "42fox"}
	if len(got) != len(want) {
		t.Fatalf("tokens: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens: %v", got)
		}
	}
	if len(Tokenize("  ...  ")) != 0 {
		t.Error("punctuation-only input should yield no tokens")
	}
}

func TestTermSearch(t *testing.T) {
	h := newHarness(t, 2)
	if err := h.engine.Define(IndexDef{Name: "docs", Fields: []string{"title", "body"}}); err != nil {
		t.Fatal(err)
	}
	h.put(t, 0, "d1", `{"title": "NoSQL databases", "body": "Couchbase is a document database"}`)
	h.put(t, 1, "d2", `{"title": "Graph systems", "body": "Graph database systems model nodes"}`)
	h.put(t, 0, "d3", `{"title": "Caching", "body": "memcached is a cache"}`)

	hits, err := h.engine.SearchTerm("docs", "database", SearchOptions{WaitSeqnos: h.fresh()})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits: %+v", hits)
	}
	// Case-insensitive.
	hits, _ = h.engine.SearchTerm("docs", "COUCHBASE", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 1 || hits[0].ID != "d1" {
		t.Fatalf("case hits: %+v", hits)
	}
	// Unindexed field does not match.
	h.put(t, 0, "d4", `{"other": "database"}`)
	hits, _ = h.engine.SearchTerm("docs", "database", SearchOptions{WaitSeqnos: h.fresh()})
	for _, hit := range hits {
		if hit.ID == "d4" {
			t.Error("unindexed field matched")
		}
	}
}

func TestScoreOrdering(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Define(IndexDef{Name: "docs", Fields: []string{"body"}})
	h.put(t, 0, "once", `{"body": "go"}`)
	h.put(t, 0, "thrice", `{"body": "go go go"}`)
	hits, _ := h.engine.SearchTerm("docs", "go", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 2 || hits[0].ID != "thrice" || hits[0].Score != 3 {
		t.Fatalf("hits: %+v", hits)
	}
	// Limit.
	hits, _ = h.engine.SearchTerm("docs", "go", SearchOptions{Limit: 1, WaitSeqnos: h.fresh()})
	if len(hits) != 1 {
		t.Fatalf("limited: %+v", hits)
	}
}

func TestPrefixSearch(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Define(IndexDef{Name: "docs", Fields: []string{"body"}})
	h.put(t, 0, "d1", `{"body": "database databases data"}`)
	h.put(t, 0, "d2", `{"body": "datum"}`)
	h.put(t, 0, "d3", `{"body": "nothing here"}`)
	hits, _ := h.engine.SearchPrefix("docs", "data", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 1 || hits[0].ID != "d1" || hits[0].Score != 3 {
		t.Fatalf("prefix hits: %+v", hits)
	}
	hits, _ = h.engine.SearchPrefix("docs", "dat", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 2 {
		t.Fatalf("wider prefix: %+v", hits)
	}
}

func TestPhraseSearch(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Define(IndexDef{Name: "docs", Fields: []string{"body"}})
	h.put(t, 0, "d1", `{"body": "key value store"}`)
	h.put(t, 0, "d2", `{"body": "value of a key in a store"}`)
	h.put(t, 0, "d3", `{"body": "store key value"}`)
	hits, _ := h.engine.SearchPhrase("docs", "key value store", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 1 || hits[0].ID != "d1" {
		t.Fatalf("phrase hits: %+v", hits)
	}
	hits, _ = h.engine.SearchPhrase("docs", "key value", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 2 {
		t.Fatalf("sub-phrase hits: %+v", hits)
	}
	if hits, _ := h.engine.SearchPhrase("docs", "", SearchOptions{}); hits != nil {
		t.Error("empty phrase")
	}
}

func TestPhraseDoesNotCrossFields(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Define(IndexDef{Name: "docs", Fields: []string{"a", "b"}})
	h.put(t, 0, "d1", `{"a": "hello", "b": "world"}`)
	h.put(t, 0, "d2", `{"a": "hello world", "b": "x"}`)
	hits, _ := h.engine.SearchPhrase("docs", "hello world", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 1 || hits[0].ID != "d2" {
		t.Fatalf("cross-field phrase: %+v", hits)
	}
}

func TestUpdateAndDeleteMaintenance(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Define(IndexDef{Name: "docs", Fields: []string{"body"}})
	h.put(t, 0, "d1", `{"body": "alpha"}`)
	hits, _ := h.engine.SearchTerm("docs", "alpha", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 1 {
		t.Fatal("initial index")
	}
	h.put(t, 0, "d1", `{"body": "beta"}`)
	hits, _ = h.engine.SearchTerm("docs", "alpha", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 0 {
		t.Fatalf("stale term: %+v", hits)
	}
	hits, _ = h.engine.SearchTerm("docs", "beta", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 1 {
		t.Fatal("updated term missing")
	}
	h.vbs[0].Delete(context.Background(), "d1", 0, 0)
	hits, _ = h.engine.SearchTerm("docs", "beta", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 0 {
		t.Fatalf("deleted doc still indexed: %+v", hits)
	}
}

func TestDefineOnExistingDataBackfills(t *testing.T) {
	h := newHarness(t, 1)
	for i := 0; i < 20; i++ {
		h.put(t, 0, fmt.Sprintf("d%d", i), `{"body": "preexisting words"}`)
	}
	h.engine.Define(IndexDef{Name: "late", Fields: []string{"body"}})
	hits, _ := h.engine.SearchTerm("late", "preexisting", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 20 {
		t.Fatalf("backfill: %d hits", len(hits))
	}
}

func TestAllStringFieldsDefault(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Define(IndexDef{Name: "all"})
	h.put(t, 0, "d1", `{"x": "findme", "n": 42, "nested": {"y": "hidden"}}`)
	hits, _ := h.engine.SearchTerm("all", "findme", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 1 {
		t.Fatalf("default fields: %+v", hits)
	}
	// Nested fields are not in the default top-level set.
	hits, _ = h.engine.SearchTerm("all", "hidden", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 0 {
		t.Fatalf("nested should not index by default: %+v", hits)
	}
}

func TestDetachVBRemovesDocs(t *testing.T) {
	h := newHarness(t, 2)
	h.engine.Define(IndexDef{Name: "docs", Fields: []string{"body"}})
	h.put(t, 0, "a", `{"body": "shared term"}`)
	h.put(t, 1, "b", `{"body": "shared term"}`)
	h.engine.SearchTerm("docs", "shared", SearchOptions{WaitSeqnos: h.fresh()})
	h.engine.DetachVB(1)
	hits, _ := h.engine.SearchTerm("docs", "shared", SearchOptions{})
	if len(hits) != 1 || hits[0].ID != "a" {
		t.Fatalf("after detach: %+v", hits)
	}
}

func TestDDLErrors(t *testing.T) {
	h := newHarness(t, 1)
	if err := h.engine.Define(IndexDef{Name: "x", Fields: []string{"bad["}}); err == nil {
		t.Error("bad path should fail")
	}
	h.engine.Define(IndexDef{Name: "x"})
	if err := h.engine.Define(IndexDef{Name: "x"}); err != ErrIndexExists {
		t.Errorf("dup: %v", err)
	}
	if _, err := h.engine.SearchTerm("nope", "x", SearchOptions{}); err != ErrNoSuchIndex {
		t.Errorf("unknown: %v", err)
	}
	if err := h.engine.Drop("nope"); err != ErrNoSuchIndex {
		t.Errorf("drop unknown: %v", err)
	}
	if err := h.engine.Drop("x"); err != nil {
		t.Fatal(err)
	}
	if len(h.engine.Names()) != 0 {
		t.Error("names after drop")
	}
}

func TestArrayFieldsIndexed(t *testing.T) {
	h := newHarness(t, 1)
	h.engine.Define(IndexDef{Name: "docs", Fields: []string{"tags"}})
	h.put(t, 0, "d1", `{"tags": ["red panda", "blue whale"]}`)
	hits, _ := h.engine.SearchTerm("docs", "whale", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 1 {
		t.Fatalf("array field: %+v", hits)
	}
	// Phrase within one element; not across elements.
	hits, _ = h.engine.SearchPhrase("docs", "panda blue", SearchOptions{WaitSeqnos: h.fresh()})
	if len(hits) != 0 {
		t.Fatalf("phrase across elements: %+v", hits)
	}
}
