// Package couchgo is a from-scratch Go reproduction of the system in
// "Have Your Data and Query It Too: From Key-Value Caching to Big Data
// Management" (SIGMOD 2016): a memory-first, shared-nothing,
// auto-partitioned, distributed NoSQL document database offering both
// key-based and secondary-index-based access paths, with API- and
// query-based (N1QL) data access.
//
// Quick start:
//
//	cluster, _ := couchgo.NewCluster(couchgo.ClusterOptions{})
//	defer cluster.Close()
//	cluster.AddNode("node0", couchgo.AllServices)
//	cluster.CreateBucket("default", couchgo.BucketOptions{})
//	bucket, _ := cluster.Bucket("default")
//
//	bucket.Upsert("user::1", map[string]any{"name": "Dipti"})
//	doc, _ := bucket.Get("user::1")
//
//	cluster.Query(`CREATE PRIMARY INDEX ON default`)
//	res, _ := cluster.Query(`SELECT name FROM default WHERE name = "Dipti"`)
//
// See DESIGN.md for the architecture and the mapping to the paper.
package couchgo

import (
	"context"
	"encoding/json"
	"time"

	"couchgo/internal/analytics"
	"couchgo/internal/cache"
	"couchgo/internal/cmap"
	"couchgo/internal/core"
	"couchgo/internal/executor"
	"couchgo/internal/fts"
	"couchgo/internal/value"
	"couchgo/internal/vbucket"
	"couchgo/internal/views"
	"couchgo/internal/xdcr"
)

// Services is a bitmask of the multi-dimensional-scaling services a
// node runs (paper §4.4). Combine with bitwise OR.
type Services = cmap.ServiceSet

// The services a node can run.
const (
	DataService      = Services(cmap.ServiceData)
	IndexService     = Services(cmap.ServiceIndex)
	QueryService     = Services(cmap.ServiceQuery)
	FullTextService  = Services(cmap.ServiceFTS)
	AnalyticsService = Services(cmap.ServiceAnalytics)
)

// AllServices runs everything on one node (the paper's uniform
// deployment).
const AllServices = cmap.AllServices

// Errors surfaced by the public API.
var (
	// ErrKeyNotFound: the document does not exist (or is expired).
	ErrKeyNotFound = cache.ErrKeyNotFound
	// ErrKeyExists: Insert of an existing key.
	ErrKeyExists = cache.ErrKeyExists
	// ErrCASMismatch: optimistic-locking conflict; re-read and retry.
	ErrCASMismatch = cache.ErrCASMismatch
	// ErrLocked: the document is hard-locked (GetAndLock).
	ErrLocked = cache.ErrLocked
	// ErrTimeout: a durability requirement wasn't met in time.
	ErrTimeout = vbucket.ErrTimeout
)

// ClusterOptions configure a new cluster.
type ClusterOptions struct {
	// Dir is the storage root. Empty = a fresh temp directory.
	Dir string
	// NumVBuckets is the partition count (default 1024, as the paper
	// fixes it; lower it only for tests and small experiments).
	NumVBuckets int
	// SyncPersist fsyncs every flushed batch.
	SyncPersist bool
	// DiskDelay injects simulated device latency per flush batch.
	DiskDelay time.Duration
	// FailoverTimeout enables automatic failover of unresponsive nodes
	// after this grace period (0 = manual failover only).
	FailoverTimeout time.Duration
}

// BucketOptions configure a bucket.
type BucketOptions struct {
	// NumReplicas is the intra-cluster replica count (0–3).
	NumReplicas int
	// MemoryQuotaBytes bounds the integrated cache.
	MemoryQuotaBytes int64
	// FullEviction lets the pager evict keys and metadata too (§4.3.3);
	// default is value-only eviction.
	FullEviction bool
}

// Cluster is a couchgo cluster handle.
type Cluster struct {
	c *core.Cluster
}

// NewCluster creates a cluster. Add nodes, then create buckets.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	c, err := core.NewCluster(core.Config{
		Dir:             opts.Dir,
		NumVBuckets:     opts.NumVBuckets,
		SyncPersist:     opts.SyncPersist,
		DiskDelay:       opts.DiskDelay,
		FailoverTimeout: opts.FailoverTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{c: c}, nil
}

// AddNode joins a node running the given services.
func (c *Cluster) AddNode(name string, services Services) error {
	_, err := c.c.AddNode(cmap.NodeID(name), services)
	return err
}

// CreateBucket provisions a bucket across the data nodes.
func (c *Cluster) CreateBucket(name string, opts BucketOptions) error {
	return c.c.CreateBucket(name, core.BucketOptions{
		NumReplicas:      opts.NumReplicas,
		MemoryQuotaBytes: opts.MemoryQuotaBytes,
		FullEviction:     opts.FullEviction,
	})
}

// Bucket opens a smart-client handle for a bucket.
func (c *Cluster) Bucket(name string) (*Bucket, error) {
	cl, err := c.c.OpenBucket(name)
	if err != nil {
		return nil, err
	}
	return &Bucket{c: c.c, cl: cl, name: name}, nil
}

// Rebalance redistributes partitions over the current data nodes.
func (c *Cluster) Rebalance() error { return c.c.Rebalance() }

// Failover promotes replicas of a failed node's partitions.
func (c *Cluster) Failover(node string) error { return c.c.Failover(cmap.NodeID(node)) }

// Kill simulates a node crash (for failure testing).
func (c *Cluster) Kill(node string) error { return c.c.Kill(cmap.NodeID(node)) }

// Orchestrator reports the elected orchestrator node.
func (c *Cluster) Orchestrator() string { return string(c.c.Orchestrator()) }

// Close shuts the cluster down.
func (c *Cluster) Close() { c.c.Close() }

// Internal exposes the underlying engine for advanced integrations
// (the REST layer and benchmarks use it).
func (c *Cluster) Internal() *core.Cluster { return c.c }

// --- N1QL ---

// Consistency selects the scan_consistency level of §3.2.3.
type Consistency int

const (
	// NotBounded is the low-latency default: the query sees whatever
	// the index has processed.
	NotBounded Consistency = iota
	// RequestPlus waits for all mutations up to query submission —
	// read-your-own-writes.
	RequestPlus
)

// QueryOptions parameterize one N1QL execution.
type QueryOptions struct {
	// Args supplies named ($name) and positional ($1...) parameters.
	Args map[string]any
	// Consistency is the scan-consistency level.
	Consistency Consistency
}

// QueryResult is a N1QL statement result.
type QueryResult struct {
	// Rows holds one JSON value per result row.
	Rows []any
	// MutationCount for DML statements.
	MutationCount int
	// Status is "success", "created", or "dropped".
	Status string
}

// Query runs a N1QL statement with default options.
func (c *Cluster) Query(statement string) (*QueryResult, error) {
	return c.QueryWithOptions(statement, QueryOptions{})
}

// QueryWithOptions runs a N1QL statement.
func (c *Cluster) QueryWithOptions(statement string, opts QueryOptions) (*QueryResult, error) {
	cons := executor.NotBounded
	if opts.Consistency == RequestPlus {
		cons = executor.RequestPlus
	}
	res, err := c.c.Query(statement, executor.Options{Params: opts.Args, Consistency: cons})
	if err != nil {
		return nil, err
	}
	return &QueryResult{Rows: res.Rows, MutationCount: res.MutationCount, Status: res.Status}, nil
}

// --- KV (the memcached-heritage API of §3.1.1) ---

// Document is a fetched document with its concurrency metadata.
type Document struct {
	ID      string
	Content []byte
	CAS     uint64
	Expiry  int64
}

// Decode unmarshals the document body into v.
func (d Document) Decode(v any) error { return json.Unmarshal(d.Content, v) }

// DurabilityOptions are the per-mutation durability knobs of §2.3.2.
type DurabilityOptions struct {
	// ReplicateTo waits for N replica acknowledgements (memory-to-
	// memory, much cheaper than persistence).
	ReplicateTo int
	// PersistTo waits for the mutation to hit the active node's disk.
	PersistTo bool
	// Timeout bounds the wait (default 10s).
	Timeout time.Duration
}

// WriteOptions combine all per-write knobs.
type WriteOptions struct {
	// CAS enables optimistic locking: the write applies only if the
	// document's CAS still matches.
	CAS uint64
	// Expiry is an absolute unix-seconds TTL (0 = none).
	Expiry int64
	// Flags is opaque application metadata.
	Flags      uint32
	Durability DurabilityOptions
}

// Bucket is a per-bucket handle: KV, views, and search.
type Bucket struct {
	c    *core.Cluster
	cl   *core.Client
	name string
}

// Name returns the bucket name.
func (b *Bucket) Name() string { return b.name }

func encodeBody(doc any) ([]byte, error) {
	switch t := doc.(type) {
	case []byte:
		return t, nil
	case json.RawMessage:
		return []byte(t), nil
	case string:
		return []byte(t), nil
	default:
		return json.Marshal(doc)
	}
}

func toDocument(key string, it cache.Item) Document {
	return Document{ID: key, Content: it.Value, CAS: it.CAS, Expiry: it.Expiry}
}

// Get fetches a document by key.
func (b *Bucket) Get(key string) (Document, error) {
	it, err := b.cl.Get(context.Background(), key)
	if err != nil {
		return Document{}, err
	}
	return toDocument(key, it), nil
}

// Upsert stores a document (insert-or-replace). doc may be []byte,
// string (raw JSON), or any JSON-marshalable value.
func (b *Bucket) Upsert(key string, doc any) (uint64, error) {
	return b.Write(key, doc, WriteOptions{})
}

// Insert stores a document that must not already exist.
func (b *Bucket) Insert(key string, doc any) (uint64, error) {
	body, err := encodeBody(doc)
	if err != nil {
		return 0, err
	}
	it, err := b.cl.Add(context.Background(), key, body)
	if err != nil {
		return 0, err
	}
	return it.CAS, nil
}

// Replace stores a document that must already exist. cas=0 skips the
// optimistic check.
func (b *Bucket) Replace(key string, doc any, cas uint64) (uint64, error) {
	body, err := encodeBody(doc)
	if err != nil {
		return 0, err
	}
	it, err := b.cl.Replace(context.Background(), key, body, cas)
	if err != nil {
		return 0, err
	}
	return it.CAS, nil
}

// Write stores a document with full options, returning the new CAS.
func (b *Bucket) Write(key string, doc any, opts WriteOptions) (uint64, error) {
	body, err := encodeBody(doc)
	if err != nil {
		return 0, err
	}
	it, err := b.cl.SetWithOptions(context.Background(), key, body, opts.Flags, opts.Expiry, opts.CAS, core.DurabilityOptions{
		ReplicateTo: opts.Durability.ReplicateTo,
		PersistTo:   opts.Durability.PersistTo,
		Timeout:     opts.Durability.Timeout,
	})
	if err != nil {
		return 0, err
	}
	return it.CAS, nil
}

// Remove deletes a document. cas=0 skips the optimistic check.
func (b *Bucket) Remove(key string, cas uint64) error {
	return b.cl.Delete(context.Background(), key, cas)
}

// Touch updates a document's TTL without changing its value.
func (b *Bucket) Touch(key string, expiry int64) error {
	return b.cl.Touch(context.Background(), key, expiry)
}

// --- Sub-document API (path-level lookups and mutations) ---

// LookupIn reads the value at a path inside a document without
// fetching the whole document.
func (b *Bucket) LookupIn(key, path string) (any, error) {
	return b.cl.SubdocGet(context.Background(), key, path)
}

// MutateIn writes the value at a path inside a document atomically,
// creating intermediate objects as needed. cas=0 skips the check.
func (b *Bucket) MutateIn(key, path string, v any, cas uint64) (uint64, error) {
	it, err := b.cl.SubdocSet(context.Background(), key, path, v, cas)
	return it.CAS, err
}

// RemoveIn deletes the field at a path inside a document atomically.
func (b *Bucket) RemoveIn(key, path string, cas uint64) (uint64, error) {
	it, err := b.cl.SubdocRemove(context.Background(), key, path, cas)
	return it.CAS, err
}

// ArrayAppendIn appends v to the array at a path atomically (the
// array is created if absent).
func (b *Bucket) ArrayAppendIn(key, path string, v any, cas uint64) (uint64, error) {
	it, err := b.cl.SubdocArrayAppend(context.Background(), key, path, v, cas)
	return it.CAS, err
}

// Increment atomically adds delta to the number at a path and returns
// the new value (created as delta when absent).
func (b *Bucket) Increment(key, path string, delta float64) (float64, error) {
	return b.cl.SubdocCounter(context.Background(), key, path, delta, 0)
}

// GetAndLock fetches the document and takes the hard lock for up to
// lockSeconds (released early by a write using the returned CAS, or by
// Unlock).
func (b *Bucket) GetAndLock(key string, lockSeconds int64) (Document, error) {
	it, err := b.cl.GetAndLock(context.Background(), key, lockSeconds)
	if err != nil {
		return Document{}, err
	}
	return toDocument(key, it), nil
}

// Unlock releases the hard lock using the CAS from GetAndLock.
func (b *Bucket) Unlock(key string, cas uint64) error {
	return b.cl.Unlock(context.Background(), key, cas)
}

// --- Views (the MapReduce-style local indexes of §3.1.2) ---

// ViewDefinition declares a view. Map expressions use the N1QL
// expression language with the document bound as `doc` (this replaces
// the paper's JavaScript map functions; see DESIGN.md substitutions).
type ViewDefinition struct {
	// Filter guards emission (like the `if` in a JS map function).
	Filter string
	// Key is the emitted index key expression (required).
	Key string
	// Value is the emitted value expression (optional).
	Value string
	// Reduce is "", "_count", "_sum", "_stats", "_min", or "_max". The
	// reduce results are pre-computed inside the index B-tree.
	Reduce string
}

// Staleness controls view-query consistency (§3.1.2's stale param).
type Staleness = views.Staleness

// Stale parameter values.
const (
	// StaleOK returns current index contents without waiting.
	StaleOK = views.StaleOK
	// StaleFalse waits for the indexer to process all current changes.
	StaleFalse = views.StaleFalse
	// StaleUpdateAfter returns current contents, then updates (the
	// server default).
	StaleUpdateAfter = views.StaleUpdateAfter
)

// ViewRow is one view query result.
type ViewRow = views.Row

// ViewQueryOptions mirror the view REST API parameters.
type ViewQueryOptions struct {
	Key          any
	HasKey       bool
	Keys         []any
	StartKey     any
	EndKey       any
	HasStart     bool
	HasEnd       bool
	InclusiveEnd bool
	Descending   bool
	Limit        int
	Skip         int
	Reduce       bool
	Group        bool
	Stale        Staleness
}

// DefineView creates a view on every data node.
func (b *Bucket) DefineView(name string, def ViewDefinition) error {
	return b.c.DefineView(b.name, views.Definition{
		Name: name,
		Map: views.MapSpec{
			Filter: def.Filter,
			Key:    def.Key,
			Value:  def.Value,
		},
		Reduce: def.Reduce,
	})
}

// DropView removes a view cluster-wide.
func (b *Bucket) DropView(name string) error { return b.c.DropView(b.name, name) }

// ViewQuery runs a scatter/gather view query (Figure 8).
func (b *Bucket) ViewQuery(name string, opts ViewQueryOptions) ([]ViewRow, error) {
	return b.c.QueryView(context.Background(), b.name, name, views.QueryOptions{
		Key: opts.Key, HasKey: opts.HasKey, Keys: opts.Keys,
		StartKey: opts.StartKey, EndKey: opts.EndKey,
		HasStart: opts.HasStart, HasEnd: opts.HasEnd,
		InclusiveEnd: opts.InclusiveEnd, Descending: opts.Descending,
		Limit: opts.Limit, Skip: opts.Skip,
		Reduce: opts.Reduce, Group: opts.Group,
		Stale: opts.Stale,
	})
}

// --- Full-text search (§6.1.3) ---

// SearchHit is one full-text result.
type SearchHit = fts.Hit

// CreateSearchIndex defines a full-text index over the listed document
// fields (empty = every top-level string field).
func (b *Bucket) CreateSearchIndex(name string, fields ...string) error {
	h, err := b.c.FTS(b.name)
	if err != nil {
		return err
	}
	return h.Engine().Define(fts.IndexDef{Name: name, Fields: fields})
}

// DropSearchIndex removes a full-text index.
func (b *Bucket) DropSearchIndex(name string) error {
	h, err := b.c.FTS(b.name)
	if err != nil {
		return err
	}
	return h.Engine().Drop(name)
}

// SearchKind selects the query type.
type SearchKind int

// Search query kinds.
const (
	SearchTerm SearchKind = iota
	SearchPrefix
	SearchPhrase
)

// Search runs a full-text query. consistent=true gives
// read-your-own-writes semantics.
func (b *Bucket) Search(index string, kind SearchKind, text string, limit int, consistent bool) ([]SearchHit, error) {
	h, err := b.c.FTS(b.name)
	if err != nil {
		return nil, err
	}
	opts := fts.SearchOptions{Limit: limit}
	if consistent {
		opts.WaitSeqnos = h.ConsistencyVector()
	}
	switch kind {
	case SearchPrefix:
		return h.Engine().SearchPrefix(index, text, opts)
	case SearchPhrase:
		return h.Engine().SearchPhrase(index, text, opts)
	default:
		return h.Engine().SearchTerm(index, text, opts)
	}
}

// --- XDCR (§4.6) ---

// XDCROptions configure a cross-cluster replication.
type XDCROptions struct {
	// FilterExpr restricts replication to document IDs matching this
	// regular expression.
	FilterExpr string
}

// Replication is a running XDCR stream; Stop ends it.
type Replication struct {
	r *xdcr.Replicator
}

// Stop halts the replication.
func (r *Replication) Stop() { r.r.Stop() }

// Stats reports sent/applied/rejected/filtered counters.
func (r *Replication) Stats() xdcr.Stats { return r.r.Stats() }

// ReplicateTo starts XDCR from a bucket on this cluster to a bucket on
// dst. Call it on both clusters (swapped) for bidirectional
// replication; conflict resolution converges both sides.
func (c *Cluster) ReplicateTo(dst *Cluster, srcBucket, dstBucket string, opts XDCROptions) (*Replication, error) {
	r, err := xdcr.Start(c.c, srcBucket, dst.c, dstBucket, xdcr.Options{FilterExpr: opts.FilterExpr})
	if err != nil {
		return nil, err
	}
	return &Replication{r: r}, nil
}

// --- Analytics (§6.2, implemented future work) ---

// AnalyticsOptions parameterize an analytics query.
type AnalyticsOptions struct {
	// Args supplies query parameters.
	Args map[string]any
	// Consistent makes the query wait until the analytics shadow has
	// processed every mutation acknowledged before the call.
	Consistent bool
}

// EnableAnalytics starts shadowing a bucket into the analytics
// service (requires a node running AnalyticsService). The shadow is
// fed by DCP and isolated from the data service.
func (c *Cluster) EnableAnalytics(bucket string) error {
	return c.c.EnableAnalytics(bucket)
}

// AnalyticsQuery runs a read-only analytical query over the bucket's
// shadow dataset. Unlike Query, general (non-key) joins are supported
// — the "much wider range of queries" of the paper's §6.2 — and the
// execution never touches the operational data service.
func (c *Cluster) AnalyticsQuery(bucket, statement string, opts AnalyticsOptions) ([]any, error) {
	aopts := analytics.QueryOptions{Params: opts.Args}
	if opts.Consistent {
		aopts.WaitSeqnos = c.c.AnalyticsConsistencyVector(bucket)
	}
	return c.c.AnalyticsQuery(bucket, statement, aopts)
}

// MustJSON is a tiny helper converting a Go value to the JSON value
// representation used by query results (handy in tests and examples).
func MustJSON(src string) any { return value.MustParse(src) }
